(** Structured error taxonomy shared by the analysis engine, the
    scheduling analyses, the exploration pool and the CLI.

    The taxonomy splits into two classes:

    - {e interrupt-class} errors ({!Cancelled}, {!Deadline_exceeded},
      {!Budget_exhausted}) are raised by guard checkpoints to stop a
      computation cooperatively.  Long-running entry points catch them
      and return a degraded-but-sound partial answer;
    - {e fault-class} errors describe why a computation cannot produce
      an answer at all (cyclic dependencies, malformed specs, parse
      failures, injected test faults) and replace the stringly
      exceptions ([Engine.Cycle of string], ad-hoc [failwith]s /
      [invalid_arg]s) previously scattered over the code base. *)

type t =
  | Cancelled  (** a cooperative cancellation token was triggered *)
  | Deadline_exceeded of { deadline_ms : float }
      (** the wall-clock deadline (relative, in milliseconds) expired *)
  | Budget_exhausted of { budget : int }
      (** the work budget (busy-window activations + fixpoint steps)
          ran out *)
  | Diverged of { iterations : int }
      (** the global fixed point did not settle within the iteration
          cap; never raised, only recorded as a degradation reason *)
  | Cycle of { element : string }
      (** resolving an output event model recursed into itself *)
  | Invalid_spec of { reason : string }
      (** the system specification fails validation or a scheduling
          analysis's structural preconditions *)
  | Parse_failure of { reason : string }
      (** a textual spec could not be parsed *)
  | Injected of { site : string }
      (** a scripted fault from {!Inject} (tests only) *)

exception Error of t
(** The one exception used to carry structured errors.  Raisers use
    [raise (Error e)]; {!Guard.check} raises it for interrupt-class
    errors. *)

val is_interrupt : t -> bool
(** [true] exactly for [Cancelled], [Deadline_exceeded] and
    [Budget_exhausted] — the errors a guarded computation converts into
    a degraded partial result rather than a failure. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** CLI exit-code contract: [4] for [Cancelled], [3] for the other
    degradation reasons ([Deadline_exceeded], [Budget_exhausted],
    [Diverged]), [1] for fault-class errors. *)
