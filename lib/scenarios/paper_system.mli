(** The evaluation system of the paper (section 6, figure 2, tables 1-3).

    Four sources write signals into the communication layer; frame F1
    (direct, high priority, transmission time [\[4:4\]]) transports the
    signals of S1, S2 and S3 over a CAN bus to CPU1, where tasks T1-T3
    (SPP, core execution times [\[24:24\]], [\[32:32\]], [\[40:40\]])
    consume them; frame F2 (direct, low priority, [\[2:2\]]) transports S4
    and acts as bus interference.

    Table 1 parameters: S1 period 250 (triggering), S2 period 450
    (triggering), S3 period 1000 (pending; the period was lost to OCR in
    the source text — see DESIGN.md), S4 period 400 (triggering). *)

val s3_period : int
(** The assumed period of source S3 (see DESIGN.md). *)

val spec : ?s3_period:int -> unit -> Cpa_system.Spec.t
(** The full system specification.  [s3_period] defaults to
    {!s3_period} and parameterizes the pending source for ablation
    sweeps. *)

val cpu_tasks : string list
(** [\["T1"; "T2"; "T3"\]] — the elements of Table 3. *)

val frames : string list
(** [\["F1"; "F2"\]]. *)

val analyse_both :
  ?s3_period:int ->
  unit ->
  (Cpa_system.Engine.result * Cpa_system.Engine.result, Guard.Error.t) result
(** Analyses the system in flat mode (standard event models, the
    baseline) and hierarchical mode; returns [(flat, hem)]. *)
