module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec

let spec ?(s1_period = 250) ?(s2_period = 450) () =
  let sources =
    [
      "S1", Stream.periodic ~name:"S1" ~period:s1_period;
      "S2", Stream.periodic ~name:"S2" ~period:s2_period;
    ]
  in
  let resources =
    [
      { Spec.res_name = "CAN1"; scheduler = Spec.Spnp; backend = Spec.Cpa };
      { Spec.res_name = "GW"; scheduler = Spec.Spp; backend = Spec.Cpa };
      { Spec.res_name = "CAN2"; scheduler = Spec.Spnp; backend = Spec.Cpa };
      { Spec.res_name = "SINK"; scheduler = Spec.Spp; backend = Spec.Cpa };
    ]
  in
  let g1 =
    Spec.frame ~name:"G1" ~bus:"CAN1" ~send_type:Comstack.Frame.Direct
      ~tx_time:(Interval.point 4) ~priority:1
      ~signals:
        [
          Spec.signal ~name:"sig1" ~origin:(Spec.From_source "S1") ();
          Spec.signal ~name:"sig2" ~origin:(Spec.From_source "S2") ();
        ]
      ()
  in
  let b1 =
    Spec.frame ~name:"B1" ~bus:"CAN2" ~send_type:Comstack.Frame.Direct
      ~tx_time:(Interval.point 6) ~priority:1
      ~signals:
        [
          Spec.signal ~name:"gsig1" ~origin:(Spec.From_output "GW1") ();
          Spec.signal ~name:"gsig2" ~origin:(Spec.From_output "GW2") ();
        ]
      ()
  in
  let tasks =
    [
      Spec.task ~name:"GW1" ~resource:"GW" ~cet:(Interval.make ~lo:3 ~hi:5)
        ~priority:1
        ~activation:(Spec.From_signal { frame = "G1"; signal = "sig1" })
        ();
      Spec.task ~name:"GW2" ~resource:"GW" ~cet:(Interval.make ~lo:4 ~hi:7)
        ~priority:2
        ~activation:(Spec.From_signal { frame = "G1"; signal = "sig2" })
        ();
      Spec.task ~name:"D1" ~resource:"SINK" ~cet:(Interval.point 20)
        ~priority:1
        ~activation:(Spec.From_signal { frame = "B1"; signal = "gsig1" })
        ();
      Spec.task ~name:"D2" ~resource:"SINK" ~cet:(Interval.point 30)
        ~priority:2
        ~activation:(Spec.From_signal { frame = "B1"; signal = "gsig2" })
        ();
    ]
  in
  Spec.make ~sources ~resources ~tasks ~frames:[ g1; b1 ] ()

let receivers = [ "D1"; "D2" ]

let path_s1 = [ "G1"; "GW1"; "B1"; "D1" ]
