(** Parametric synthetic systems for scaling and ablation experiments. *)

val fan_in :
  ?base_period:int ->
  ?cet:int ->
  ?tx_time:int ->
  signals:int ->
  unit ->
  Cpa_system.Spec.t
(** [fan_in ~signals:n ()] builds a system with [n] periodic sources
    (periods [base_period], [base_period + 50], ...) whose triggering
    signals are packed into one direct frame on a CAN bus, received by [n]
    SPP tasks on one CPU (priorities in source order, core execution time
    [cet] each).  Used by the scaling experiment A3: the flat baseline
    activates every receiver with all [n] interleaved signal streams,
    while the hierarchical analysis unpacks them.

    Defaults: [base_period = 300 * n] (keeps the CPU schedulable as [n]
    grows), [cet = 20], [tx_time = 4]. *)

val network :
  ?seed:int ->
  ?ecus:int ->
  unit ->
  Cpa_system.Spec.t
(** [network ~seed ~ecus ()] builds a deterministic pseudo-random
    many-ECU system: [ecus] CPUs with mixed schedulers (SPP / SPNP /
    round-robin in rotation), one CAN segment (two when [ecus >= 4]),
    a sense->process chain per ECU, process outputs packed two signals
    per frame onto the segments, receiver tasks on the neighbouring ECU
    unpacking each signal, and — with two segments — a gateway frame
    repacking a bus-0 signal onto bus 1 ([From_signal] origin).

    All parameters (periods, jitters, execution and transmission times,
    round-robin quanta) are drawn from one generator seeded by [seed]
    and [ecus], so equal arguments yield digest-identical specs —
    the property the scaling benchmark's byte-identical-across-jobs
    assertion rests on.  Periods are large relative to execution times,
    keeping utilization conservative and the analysis convergent.
    Defaults: [seed = 1], [ecus = 8]. *)

val chain :
  ?period:int ->
  ?stages:int ->
  unit ->
  Cpa_system.Spec.t
(** [chain ~stages:k ()] builds a pipeline of [k] tasks on alternating
    CPUs connected by task outputs — a plain CPA system without frames,
    used to exercise multi-resource fixed-point iteration. *)
