module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec

let s3_period = 1000

let spec ?(s3_period = s3_period) () =
  let sources =
    [
      "S1", Stream.periodic ~name:"S1" ~period:250;
      "S2", Stream.periodic ~name:"S2" ~period:450;
      "S3", Stream.periodic ~name:"S3" ~period:s3_period;
      "S4", Stream.periodic ~name:"S4" ~period:400;
    ]
  in
  let resources =
    [
      { Spec.res_name = "CAN"; scheduler = Spec.Spnp; backend = Spec.Cpa };
      { Spec.res_name = "CPU1"; scheduler = Spec.Spp; backend = Spec.Cpa };
    ]
  in
  let f1 =
    Spec.frame ~name:"F1" ~bus:"CAN" ~send_type:Comstack.Frame.Direct
      ~tx_time:(Interval.point 4) ~priority:1
      ~signals:
        [
          Spec.signal ~name:"sig1" ~origin:(Spec.From_source "S1") ();
          Spec.signal ~name:"sig2" ~origin:(Spec.From_source "S2") ();
          Spec.signal ~name:"sig3" ~property:Hem.Model.Pending
            ~origin:(Spec.From_source "S3") ();
        ]
      ()
  in
  let f2 =
    Spec.frame ~name:"F2" ~bus:"CAN" ~send_type:Comstack.Frame.Direct
      ~tx_time:(Interval.point 2) ~priority:2
      ~signals:[ Spec.signal ~name:"sig4" ~origin:(Spec.From_source "S4") () ]
      ()
  in
  let receiver name prio cet signal =
    Spec.task ~name ~resource:"CPU1" ~cet:(Interval.point cet) ~priority:prio
      ~activation:(Spec.From_signal { frame = "F1"; signal })
      ()
  in
  Spec.make ~sources ~resources
    ~tasks:
      [
        receiver "T1" 1 24 "sig1";
        receiver "T2" 2 32 "sig2";
        receiver "T3" 3 40 "sig3";
      ]
    ~frames:[ f1; f2 ] ()

let cpu_tasks = [ "T1"; "T2"; "T3" ]

let frames = [ "F1"; "F2" ]

let analyse_both ?s3_period () =
  let system = spec ?s3_period () in
  match Cpa_system.Engine.analyse ~mode:Cpa_system.Engine.Flat_sem system with
  | Error e -> Error e
  | Ok flat -> begin
    match
      Cpa_system.Engine.analyse ~mode:Cpa_system.Engine.Hierarchical system
    with
    | Error e -> Error e
    | Ok hem -> Ok (flat, hem)
  end
