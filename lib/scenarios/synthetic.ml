module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec

let fan_in ?base_period ?(cet = 20) ?(tx_time = 4) ~signals ()  =
  if signals < 1 then invalid_arg "Synthetic.fan_in: signals < 1";
  let base_period =
    match base_period with
    | Some p -> p
    | None -> 300 * signals
  in
  let source_name i = Printf.sprintf "S%d" (i + 1) in
  let signal_name i = Printf.sprintf "sig%d" (i + 1) in
  let task_name i = Printf.sprintf "T%d" (i + 1) in
  let indices = List.init signals Fun.id in
  let sources =
    List.map
      (fun i ->
        let period = base_period + (50 * i) in
        source_name i, Stream.periodic ~name:(source_name i) ~period)
      indices
  in
  let frame =
    Spec.frame ~name:"F" ~bus:"CAN" ~send_type:Comstack.Frame.Direct
      ~tx_time:(Interval.point tx_time) ~priority:1
      ~signals:
        (List.map
           (fun i ->
             Spec.signal ~name:(signal_name i)
               ~origin:(Spec.From_source (source_name i))
               ())
           indices)
      ()
  in
  let tasks =
    List.map
      (fun i ->
        Spec.task ~name:(task_name i) ~resource:"CPU" ~cet:(Interval.point cet)
          ~priority:(i + 1)
          ~activation:(Spec.From_signal { frame = "F"; signal = signal_name i })
          ())
      indices
  in
  Spec.make ~sources
    ~resources:
      [
        { Spec.res_name = "CAN"; scheduler = Spec.Spnp; backend = Spec.Cpa };
        { Spec.res_name = "CPU"; scheduler = Spec.Spp; backend = Spec.Cpa };
      ]
    ~tasks ~frames:[ frame ] ()

(* Seeded many-ECU network: [ecus] CPUs with mixed schedulers, one or
   two CAN segments, per-ECU sense -> process chains whose outputs are
   packed (two signals per frame) onto a segment, receiver tasks on the
   next ECU unpacking them, and — with two segments — a gateway frame
   that repacks a bus-0 signal onto bus 1 (a [From_signal] origin, the
   hierarchy hop the paper's gateway example exercises).  All draws come
   from one [Random.State] seeded by [seed], so the same seed always
   yields the same spec (digest-identical), which is what lets the
   scaling benchmark assert byte-identical results across jobs counts.
   Periods are drawn large relative to execution times, keeping every
   resource conservatively loaded and the analysis convergent. *)
let network ?(seed = 1) ?(ecus = 8) () =
  if ecus < 1 then invalid_arg "Synthetic.network: ecus < 1";
  let rng = Random.State.make [| 0x5e01; seed; ecus |] in
  let rand lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let cpu e = Printf.sprintf "ecu%d" e in
  let buses = if ecus >= 4 then 2 else 1 in
  let bus b = Printf.sprintf "bus%d" b in
  let resources =
    List.init ecus (fun e ->
      let scheduler =
        match e mod 3 with
        | 0 -> Spec.Spp
        | 1 -> Spec.Spnp
        | _ -> Spec.Round_robin
      in
      { Spec.res_name = cpu e; scheduler; backend = Spec.Cpa })
    @ List.init buses (fun b -> { Spec.res_name = bus b; scheduler = Spec.Spnp; backend = Spec.Cpa })
  in
  let service_of e = if e mod 3 = 2 then Some (rand 40 60) else None in
  let sources = ref [] in
  let tasks = ref [] in
  let add_task t = tasks := t :: !tasks in
  (* per-ECU chains: sense (from the ECU's source) -> proc (its output
     feeds the bus) *)
  List.iter
    (fun e ->
      let src = Printf.sprintf "S%d" e in
      let period = 10 * rand 250 500 in
      let jitter = 10 * rand 0 (period / 40) in
      sources :=
        ( src,
          Stream.periodic_jitter ~name:src ~period ~jitter () )
        :: !sources;
      let service = service_of e in
      add_task
        (Spec.task ~name:(Printf.sprintf "sense%d" e) ~resource:(cpu e)
           ~cet:(Interval.make ~lo:(rand 5 10) ~hi:(rand 11 20))
           ~priority:1 ?service
           ~activation:(Spec.From_source src) ());
      add_task
        (Spec.task ~name:(Printf.sprintf "proc%d" e) ~resource:(cpu e)
           ~cet:(Interval.make ~lo:(rand 5 10) ~hi:(rand 11 25))
           ~priority:2 ?service
           ~activation:(Spec.From_output (Printf.sprintf "sense%d" e)) ()))
    (List.init ecus Fun.id);
  (* frames: pack proc outputs pairwise onto the segments, receivers on
     the next ECU unpack each signal *)
  let frames = ref [] in
  let frame_count = (ecus + 1) / 2 in
  List.iter
    (fun f ->
      let members =
        List.filter (fun e -> e < ecus) [ 2 * f; (2 * f) + 1 ]
      in
      let b = f mod buses in
      let fname = Printf.sprintf "F%d" f in
      frames :=
        Spec.frame ~name:fname ~bus:(bus b)
          ~send_type:Comstack.Frame.Direct
          ~tx_time:(Interval.make ~lo:2 ~hi:(rand 3 6))
          ~priority:(f + 1)
          ~signals:
            (List.map
               (fun e ->
                 Spec.signal ~name:(Printf.sprintf "sig%d" e)
                   ~origin:(Spec.From_output (Printf.sprintf "proc%d" e))
                   ())
               members)
          ()
        :: !frames;
      List.iter
        (fun e ->
          let rx = (e + 1) mod ecus in
          add_task
            (Spec.task ~name:(Printf.sprintf "recv%d" e) ~resource:(cpu rx)
               ~cet:(Interval.make ~lo:(rand 5 10) ~hi:(rand 11 20))
               ~priority:(3 + (e / 2)) ?service:(service_of rx)
               ~activation:
                 (Spec.From_signal { frame = fname; signal = Printf.sprintf "sig%d" e })
               ()))
        members)
    (List.init frame_count Fun.id);
  (* gateway hop: with two segments, repack frame F0's first signal onto
     bus 1 and receive it on the last ECU *)
  if buses = 2 then begin
    frames :=
      Spec.frame ~name:"GW" ~bus:(bus 1) ~send_type:Comstack.Frame.Direct
        ~tx_time:(Interval.make ~lo:2 ~hi:(rand 3 5))
        ~priority:(frame_count + 1)
        ~signals:
          [
            Spec.signal ~name:"gw_sig"
              ~origin:(Spec.From_signal { frame = "F0"; signal = "sig0" })
              ();
          ]
        ()
      :: !frames;
    let rx = ecus - 1 in
    add_task
      (Spec.task ~name:"gw_recv" ~resource:(cpu rx)
         ~cet:(Interval.make ~lo:(rand 5 8) ~hi:(rand 9 15))
         ~priority:99 ?service:(service_of rx)
         ~activation:(Spec.From_signal { frame = "GW"; signal = "gw_sig" })
         ())
  end;
  Spec.make ~sources:(List.rev !sources) ~resources
    ~tasks:(List.rev !tasks) ~frames:(List.rev !frames) ()

let chain ?(period = 500) ?(stages = 4) () =
  if stages < 1 then invalid_arg "Synthetic.chain: stages < 1";
  let task_name i = Printf.sprintf "stage%d" (i + 1) in
  let cpu i = Printf.sprintf "cpu%d" (i mod 2) in
  let tasks =
    List.init stages (fun i ->
      let activation =
        if i = 0 then Spec.From_source "src"
        else Spec.From_output (task_name (i - 1))
      in
      Spec.task ~name:(task_name i) ~resource:(cpu i)
        ~cet:(Interval.make ~lo:10 ~hi:(20 + (5 * i)))
        ~priority:(i + 1) ~activation ())
  in
  Spec.make
    ~sources:[ "src", Stream.periodic ~name:"src" ~period ]
    ~resources:
      [
        { Spec.res_name = "cpu0"; scheduler = Spec.Spp; backend = Spec.Cpa };
        { Spec.res_name = "cpu1"; scheduler = Spec.Spp; backend = Spec.Cpa };
      ]
    ~tasks ()
