module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Spec = Cpa_system.Spec

let spec () =
  let sources =
    [
      "nav", Stream.periodic ~name:"nav" ~period:100;
      ( "imu",
        Stream.periodic_jitter ~name:"imu" ~period:80 ~jitter:20 ~d_min:0 () );
      "radio", Stream.sporadic ~name:"radio" ~d_min:500;
    ]
  in
  let resources =
    [
      { Spec.res_name = "canA"; scheduler = Spec.Spnp; backend = Spec.Cpa };
      { Spec.res_name = "mission"; scheduler = Spec.Edf; backend = Spec.Cpa };
      { Spec.res_name = "backbone"; scheduler = Spec.Tdma; backend = Spec.Cpa };
      { Spec.res_name = "display"; scheduler = Spec.Round_robin; backend = Spec.Cpa };
    ]
  in
  let frames =
    [
      (* mixed frame: sent on nav updates AND at least every 200 *)
      Spec.frame ~name:"FS" ~bus:"canA"
        ~send_type:(Comstack.Frame.Mixed 200)
        ~tx_time:(Interval.make ~lo:3 ~hi:4) ~priority:1
        ~signals:
          [
            Spec.signal ~name:"sig_nav" ~origin:(Spec.From_source "nav") ();
            Spec.signal ~name:"sig_imu" ~property:Hem.Model.Pending
              ~origin:(Spec.From_source "imu") ();
          ]
        ();
      Spec.frame ~name:"FR" ~bus:"canA" ~send_type:Comstack.Frame.Direct
        ~tx_time:(Interval.make ~lo:2 ~hi:2) ~priority:2
        ~signals:
          [ Spec.signal ~name:"sig_radio" ~origin:(Spec.From_source "radio") () ]
        ();
    ]
  in
  let tasks =
    [
      Spec.task ~name:"nav_proc" ~resource:"mission"
        ~cet:(Interval.make ~lo:5 ~hi:10) ~priority:1 ~deadline:60
        ~activation:(Spec.From_signal { frame = "FS"; signal = "sig_nav" })
        ();
      Spec.task ~name:"imu_proc" ~resource:"mission"
        ~cet:(Interval.make ~lo:4 ~hi:8) ~priority:2 ~deadline:80
        ~activation:(Spec.From_signal { frame = "FS"; signal = "sig_imu" })
        ();
      Spec.task ~name:"radio_proc" ~resource:"mission"
        ~cet:(Interval.make ~lo:10 ~hi:20) ~priority:3 ~deadline:300
        ~activation:(Spec.From_signal { frame = "FR"; signal = "sig_radio" })
        ();
      Spec.task ~name:"fusion" ~resource:"mission"
        ~cet:(Interval.make ~lo:6 ~hi:12) ~priority:4 ~deadline:200
        ~activation:
          (Spec.And_of
             [ Spec.From_output "nav_proc"; Spec.From_output "imu_proc" ])
        ();
      Spec.task ~name:"uplink_f" ~resource:"backbone" ~cet:(Interval.point 3)
        ~priority:1 ~service:4 ~activation:(Spec.From_output "fusion") ();
      Spec.task ~name:"uplink_r" ~resource:"backbone" ~cet:(Interval.point 2)
        ~priority:2 ~service:3 ~activation:(Spec.From_output "radio_proc") ();
      Spec.task ~name:"render" ~resource:"display"
        ~cet:(Interval.make ~lo:8 ~hi:15) ~priority:1 ~service:5
        ~activation:(Spec.From_output "uplink_f") ();
      Spec.task ~name:"log" ~resource:"display" ~cet:(Interval.make ~lo:4 ~hi:6)
        ~priority:2 ~service:3 ~activation:(Spec.From_output "uplink_r") ();
    ]
  in
  Spec.make ~sources ~resources ~tasks ~frames ()

let all_elements =
  [
    "FS"; "FR"; "nav_proc"; "imu_proc"; "radio_proc"; "fusion"; "uplink_f";
    "uplink_r"; "render"; "log";
  ]

let generators () =
  [
    "nav", Des.Gen.periodic ~period:100 ();
    "imu", Des.Gen.periodic_jitter ~period:80 ~jitter:20 ();
    "radio", Des.Gen.sporadic ~d_min:500 ~slack:400 ();
  ]
