module Time = Timebase.Time

type t = {
  prefix : int array;  (* values for n = 2 .. length + 1 *)
  repeat_events : int;
  repeat_increment : int;
}

let eval t n =
  if n <= 1 then 0
  else begin
    let i = n - 2 in
    let len = Array.length t.prefix in
    if i < len then t.prefix.(i)
    else begin
      let over = i - (len - 1) in
      let steps = (over + t.repeat_events - 1) / t.repeat_events in
      t.prefix.(i - (steps * t.repeat_events)) + (steps * t.repeat_increment)
    end
  end

let create ~prefix ~repeat_events ~repeat_increment =
  if repeat_events < 1 then invalid_arg "Pattern.create: repeat_events < 1";
  if repeat_increment < 0 then
    invalid_arg "Pattern.create: negative increment";
  if List.length prefix < repeat_events then
    invalid_arg "Pattern.create: prefix shorter than repeat_events";
  if List.exists (fun v -> v < 0) prefix then
    invalid_arg "Pattern.create: negative distance";
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | [ _ ] | [] -> true
  in
  if not (monotone prefix) then
    invalid_arg "Pattern.create: non-monotone prefix";
  let t = { prefix = Array.of_list prefix; repeat_events; repeat_increment } in
  (* the recurrence must preserve monotonicity across and beyond the
     prefix boundary *)
  let len = Array.length t.prefix in
  let rec check n =
    if n > len + (2 * repeat_events) + 2 then t
    else if eval t n < eval t (n - 1) then
      invalid_arg "Pattern.create: recurrence breaks monotonicity"
    else check (n + 1)
  in
  check 2

let prefix_length t = Array.length t.prefix

let repeat_events t = t.repeat_events

let repeat_increment t = t.repeat_increment

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let equal a b =
  (* same long-run rate, and identical values over a common period past
     both prefixes: then the recurrences pin down equality forever *)
  a.repeat_increment * b.repeat_events = b.repeat_increment * a.repeat_events
  && begin
    let lcm =
      a.repeat_events / gcd a.repeat_events b.repeat_events * b.repeat_events
    in
    let bound =
      2 + Stdlib.max (Array.length a.prefix) (Array.length b.prefix) + lcm
    in
    let rec same n = n > bound || (eval a n = eval b n && same (n + 1)) in
    same 2
  end

let to_stream_function t n = Time.of_int (eval t n)

let to_curve t =
  Curve.periodic ~prefix:(Array.copy t.prefix) ~period_events:t.repeat_events
    ~period_time:t.repeat_increment

let of_sem_delta_min sem =
  let period = sem.Sem.period
  and jitter = sem.Sem.jitter
  and d_min = sem.Sem.d_min in
  let delta n = Stdlib.max ((n - 1) * d_min) (((n - 1) * period) - jitter) in
  if d_min = period then
    create ~prefix:[ period ] ~repeat_events:1 ~repeat_increment:period
  else begin
    (* the periodic term dominates once (n-1) (period - d_min) >= jitter *)
    let crossover = (jitter + (period - d_min) - 1) / (period - d_min) in
    let len = Stdlib.max 1 crossover in
    create
      ~prefix:(List.init len (fun i -> delta (i + 2)))
      ~repeat_events:1 ~repeat_increment:period
  end

let detect ?(max_prefix = 256) ?(max_repeat = 64) ?(check = 128) f =
  let fits rep len =
    (* candidate increment anchored at the prefix end *)
    let base = len + 2 in
    let inc = f base - f (base - rep) in
    if inc < 0 then None
    else begin
      let rec holds j =
        j > check || (f (base + j) = f (base + j - rep) + inc && holds (j + 1))
      in
      if holds 0 then Some inc else None
    end
  in
  let rec try_rep rep =
    if rep > max_repeat then None
    else begin
      let rec try_len len =
        if len > max_prefix then None
        else begin
          match fits rep len with
          | Some inc -> begin
            match
              create
                ~prefix:(List.init len (fun i -> f (i + 2)))
                ~repeat_events:rep ~repeat_increment:inc
            with
            | t -> Some t
            | exception Invalid_argument _ -> try_len (len + 1)
          end
          | None -> try_len (len + 1)
        end
      in
      match try_len rep with
      | Some _ as found -> found
      | None -> try_rep (rep + 1)
    end
  in
  try_rep 1

let pp ppf t =
  Format.fprintf ppf "@[<h>[%s] then +%d per %d events@]"
    (String.concat "; "
       (List.map string_of_int (Array.to_list t.prefix)))
    t.repeat_increment t.repeat_events
