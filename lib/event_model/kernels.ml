(* Global switch between the batched/packed hot-path kernels and the
   legacy scalar implementations they replaced.  Both paths compute the
   same mathematical objects; keeping the scalar path callable lets the
   benchmarks measure honest speedups in one binary and lets the
   verification layer assert byte-identical outcomes (Verify.Oracle's
   kernel-agreement check, `bench scale`). *)

let enabled = ref true

let with_mode mode f =
  let saved = !enabled in
  enabled := mode;
  Fun.protect ~finally:(fun () -> enabled := saved) f

let with_scalar f = with_mode false f
let with_batched f = with_mode true f
