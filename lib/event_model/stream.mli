(** Event streams described by distance-function tuples F = (delta_min,
    delta_plus).

    Following the paper's system model, an event stream is modeled by the
    two distance functions: [delta_min n] (resp. [delta_plus n]) is the
    minimum (resp. maximum) distance between any [n] consecutive events.
    Both are [0] for [n <= 1]; [delta_plus] may be infinite (sporadic
    streams, pending signals).  The arrival functions eta_plus / eta_minus
    are derived by pseudo-inversion exactly as in eqs. (1)-(2):
    [eta_plus dt = max {n | delta_min n < dt}] and
    [eta_minus dt = min {n >= 0 | delta_plus (n + 2) > dt}].

    Every stream must keep both distance curves monotone, non-negative
    and ordered ([delta_min n <= delta_plus n]); true event streams are
    additionally superadditive in [delta_min] and subadditive in
    [delta_plus].  [Verify.Stream] checks all of these plus the
    eta-duality at run time and is wired into the analysis engine's
    [~selfcheck] hook. *)

type t

val make :
  name:string ->
  delta_min:(int -> Timebase.Time.t) ->
  delta_plus:(int -> Timebase.Time.t) ->
  t
(** [make ~name ~delta_min ~delta_plus] wraps the distance functions in
    memoized curves.  Values at [n <= 1] are forced to [0]; the given
    functions are only consulted for [n >= 2] and must be monotone. *)

val of_curves : name:string -> delta_min:Curve.t -> delta_plus:Curve.t -> t
(** Like {!make} for pre-built curves (values at [n <= 1] still forced to
    [0]). *)

val name : t -> string

val with_name : string -> t -> t

val delta_min : t -> int -> Timebase.Time.t
(** [delta_min t n]: minimum distance covering [n] consecutive events. *)

val delta_plus : t -> int -> Timebase.Time.t
(** [delta_plus t n]: maximum distance covering [n] consecutive events. *)

val delta_min_curve : t -> Curve.t

val delta_plus_curve : t -> Curve.t

val eta_plus : t -> int -> Timebase.Count.t
(** [eta_plus t dt]: maximum number of events in any half-open time window
    of size [dt] (eq. 1): [max {n | delta_min n < dt}], and [0] for
    [dt <= 0].  Returns [Inf] when the search cap is exceeded. *)

val eta_minus : t -> int -> Timebase.Count.t
(** [eta_minus t dt]: minimum number of events in any open window of size
    [dt] (eq. 2): [min {n >= 0 | delta_plus (n + 2) > dt}]. *)

(** {1 Common stream constructors} *)

val periodic : name:string -> period:int -> t
(** Strictly periodic stream: [delta_min n = delta_plus n = (n-1) * period]. *)

val sporadic : name:string -> d_min:int -> t
(** Sporadic stream with minimum inter-arrival [d_min]: [delta_plus = inf]. *)

val periodic_jitter : name:string -> period:int -> jitter:int -> ?d_min:int -> unit -> t
(** Standard event model as a stream; see {!Sem}. [d_min] defaults to [1]. *)

val periodic_burst :
  name:string -> period:int -> burst:int -> d_min:int -> t
(** Deterministic bursty stream: bursts of [burst] events spaced [d_min]
    apart, burst starts [period] apart.  Requires
    [(burst - 1) * d_min < period]. *)

(** {1 Validation and display} *)

val well_formed : ?horizon:int -> t -> (unit, string) result
(** Checks, on the sampled prefix [n <= horizon] (default 64): monotonicity
    of both curves, [delta_min n <= delta_plus n], and zero values at
    [n <= 1].  Returns a description of the first violation. *)

val sample_eta_plus : t -> dts:int list -> (int * Timebase.Count.t) list
(** Evaluation series used by the figure harnesses. *)

val pp : Format.formatter -> t -> unit
(** Prints the name and a short prefix of both distance curves. *)
