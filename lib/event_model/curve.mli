(** Memoized monotone curves over event indices.

    A curve maps an event count [n >= 0] to a time value, is monotonically
    non-decreasing, and is evaluated lazily.  Delta curves of event streams
    ([delta_min], [delta_plus]) are represented this way; the arrival
    functions eta_plus / eta_minus are obtained by pseudo-inversion
    (paper, eqs. 1-2).

    {b Delta-curve conventions.}  Curves used as distance functions must
    satisfy [eval t 0 = eval t 1 = 0] (the distance covering zero or one
    event is zero; {!clamp_low} enforces it, [Event_model.Stream.make]
    applies it to every stream) and [delta_min <= delta_plus] pointwise.
    [Verify.Stream] audits these conventions at run time; the engine's
    [~selfcheck] hook and [hem_tool --selfcheck] wire the audit into whole
    system analyses.

    Two backends coexist.  The {e closure} backend memoizes an arbitrary
    function into a dense array prefix (amortised O(1) append, spilling to
    a hash table for very deep probes).  The {e compact periodic} backend
    ({!periodic}) stores an explicit finite prefix plus a periodic tail
    [(period_events, period_time)], so standard event models and
    periodic-with-burst patterns evaluate in O(1) at any [n] and the
    pseudo-inversion searches jump directly into the right period instead
    of running an exponential search.

    {b Domain locality.}  The memo tables (array prefixes, spill hash
    tables, inversion hint indices) are mutable and {e not} synchronised:
    evaluating one curve from two domains concurrently is a data race.
    Curves — and everything holding them: streams, specs, engine results
    — must stay in the domain that created them.  Parallel exploration
    respects this by shipping pure-data work descriptions across domains
    and rebuilding each spec worker-side (see [Explore.Pool] and
    [Explore.Space]); cross-domain result sharing is limited to immutable
    extracts such as [Explore.Summary.t]. *)

type t

exception Unbounded of string
(** Raised when a pseudo-inversion search exceeds the safety cap (or, for
    compact periodic curves, is provably infinite), i.e. the curve appears
    bounded so the inverse would be infinite. *)

val make : (int -> Timebase.Time.t) -> t
(** [make f] memoizes [f].  [f] must be pure and monotone in [n]. *)

val make_rec : ((int -> Timebase.Time.t) -> int -> Timebase.Time.t) -> t
(** [make_rec f] builds a self-referential curve: [f self n] may call
    [self] on indices strictly smaller than [n].  Used for recurrences such
    as the task output model. *)

val constant : Timebase.Time.t -> t

val periodic : prefix:int array -> period_events:int -> period_time:int -> t
(** [periodic ~prefix ~period_events ~period_time] is the compact curve
    with [eval t n = 0] for [n <= 1], [eval t n = prefix.(n - 2)] inside
    the prefix, and beyond it the recurrence
    [eval t (n + period_events) = eval t n + period_time].  The prefix
    holds finite, non-negative, monotone values and must be at least
    [period_events] long.
    @raise Invalid_argument when the shape or monotonicity constraints are
    violated. *)

val clamp_low : t -> t
(** [clamp_low t] forces [eval _ n = 0] for [n <= 1] while preserving a
    compact backend when [t] already satisfies the constraint. *)

val eval : t -> int -> Timebase.Time.t

(** {1 Packed (batched, allocation-free) evaluation}

    The hot analysis loops — busy-window interference, OR-combination
    convolutions, the task output recurrence — probe curves millions of
    times; boxing every result as a [Time.t] and bumping a metrics
    counter per probe dominates the arithmetic itself.  The packed API
    exposes the memo's own order-preserving int encoding: [Time.Fin d]
    is [d] and [Time.Inf] is {!packed_inf} ([= max_int]), so [Stdlib]
    integer comparison, [min], [max] and addition of finite values agree
    with the corresponding [Time] operations.

    Batched sweeps charge {e one} [curve.batch_evals] bump plus the probe
    count to [curve.batch_probe_count] instead of per-probe
    [periodic_evals] traffic; closure-backend memo misses are still
    charged individually (underlying work stays exactly counted). *)

val packed_inf : int
(** Encoding of [Time.Inf]; strictly greater than every finite value. *)

val eval_packed : t -> int -> int
(** [eval_packed t n] is [eval t n] in packed encoding.  On the compact
    periodic backend this allocates nothing. *)

val eval_batch : t -> int array -> int array
(** [eval_batch t probes] evaluates all probe indices in one sweep and
    returns the packed values, [result.(i) = eval_packed t probes.(i)].
    Probes may be unsorted and may contain duplicates. *)

val eval_range_into : t -> n0:int -> len:int -> dst:int array -> pos:int -> unit
(** [eval_range_into t ~n0 ~len ~dst ~pos] stores
    [eval_packed t (n0 + i)] into [dst.(pos + i)] for [0 <= i < len] —
    the zero-allocation range variant of {!eval_batch} used to fill SoA
    value tables incrementally.
    @raise Invalid_argument when the destination range is out of bounds. *)

val count_lt_packed : t -> lo:int -> limit:int -> int
(** [count_lt_packed t ~lo ~limit] is [count_lt t (Fin limit)] with a
    resumable search: [lo >= 1] must be a verified lower bound on the
    first index with [eval t _ >= limit] (i.e. [lo = 1], or
    [eval t (lo - 1) < limit] — in particular [lo = previous result + 1]
    is valid whenever the limit only grows between calls, as it does in
    busy-window convergence loops).  No [Time.t] is allocated.
    @raise Unbounded as {!count_lt}. *)

val backend : t -> [ `Closure | `Periodic | `Constant ]
(** Which representation backs the curve (observability / tests). *)

val periodic_tail : t -> (int * int * int) option
(** [periodic_tail t] is [Some (prefix_len, period_events, period_time)]
    when [t] is backed by the compact periodic representation: the prefix
    covers [n = 2 .. prefix_len + 1] and beyond it
    [eval t (n + period_events) = eval t n + period_time].  The tail gives
    the exact long-run rate of the curve ([period_time / period_events]
    time units per event), which exact analyses (e.g. the shaper's
    backlog-divergence test) and the verification layer rely on.  [None]
    for closure- and constant-backed curves. *)

val search_cap : int
(** Safety cap on closure-backend pseudo-inversion searches (indices
    explored before {!Unbounded} is raised).  Compact periodic curves are
    inverted arithmetically and are not subject to the cap. *)

val count_lt : t -> Timebase.Time.t -> int
(** [count_lt c t] is the largest [n >= 1] with [eval c n < t], or [0]
    when no such [n] exists (i.e. already [eval c 1 >= t]); requires
    [t > 0].  For delta curves — which satisfy [eval c 1 = 0] — the result
    is always [>= 1].  This is the search kernel of eta_plus (eq. 1).
    @raise Unbounded if no bounded answer below {!search_cap} exists. *)

val first_gt : t -> offset:int -> Timebase.Time.t -> int
(** [first_gt c ~offset t] is the least [n >= 0] with
    [eval c (n + offset) > t].  This is the search kernel of eta_minus
    (eq. 2, with [offset = 2]).
    @raise Unbounded if no answer below {!search_cap} exists. *)

(** {1 Observability}

    Evaluation and search work is counted through the {!Obs.Metrics}
    registry (counter names [curve.*]).  Work on a curve is charged to the
    metrics scopes that were active when the curve was {e created}; curves
    created outside any scope (shared source streams) charge whichever
    scopes are active at evaluation time.  This keeps per-analysis
    attribution exact even when the lazy evaluation of one analysis's
    memoized streams happens inside another analysis's extent.

    Memo hits are counted per curve and flushed to the registry lazily;
    every stats read below flushes first, so totals are always exact at
    observation points. *)

type stats = {
  closure_evals : int;  (** underlying closure invocations (memo misses) *)
  memo_hits : int;  (** dense-array / spill memo hits *)
  periodic_evals : int;  (** O(1) compact-backend evaluations *)
  searches : int;  (** pseudo-inversion queries *)
  search_steps : int;  (** probes across all searches *)
  spill_probes : int;  (** lookups in the deep-probe spill tables *)
  batch_evals : int;  (** batched sweeps ({!eval_batch} / {!eval_range_into}) *)
  batch_probe_count : int;  (** total probes served by batched sweeps *)
}

val stats : unit -> stats
(** Process-global monotone totals. *)

val stats_in : Obs.Metrics.scope -> stats
(** Curve work charged to one metrics scope (e.g. one engine analysis). *)

val reset_stats : unit -> unit
(** Resets the global totals; scoped cells are unaffected. *)

val stats_diff : stats -> stats -> stats
(** [stats_diff a b] is the per-field difference [a - b]. *)
