(** Switch between the batched/packed hot-path kernels and the legacy
    scalar implementations they replaced.

    The optimized paths (batched OR-combination convolution, compact
    periodic task-output construction, warm-started busy-window
    fixpoints with resumable arrival searches) compute exactly the same
    values as the scalar originals; this switch exists so that a single
    binary can measure honest before/after speedups ([bench scale]) and
    so the verification layer can assert byte-identical analysis
    outcomes between the two paths (see [Verify.Oracle]).

    The flag is read at curve/stream {e construction} and analysis time
    from the current domain; set it only from the domain that will run
    the analysis (pool workers rebuild specs worker-side after the flag
    is set, so exploration sweeps see a consistent mode). *)

val enabled : bool ref
(** [true] (default): use the batched kernels.  [false]: legacy scalar
    paths. *)

val with_scalar : (unit -> 'a) -> 'a
(** Run [f] with the kernels disabled; restores the previous mode. *)

val with_batched : (unit -> 'a) -> 'a
(** Run [f] with the kernels enabled; restores the previous mode. *)
