(** Pluggable output-model propagation (pyCPA-inspired).

    The analysis engine turns an analysed element's input stream and
    response-time interval into an output stream.  The paper's exact
    Theta_tau recursion ({!Task_op.output}) is one way to do that; pyCPA
    ships a family of alternatives trading tightness against cost, plus a
    per-task [optimal] selection.  This module gives them a common
    signature so the engine, the exploration space and the verification
    oracles can treat the propagation method as data.

    All modes share the output maximum-distance curve
    [delta_plus' n = delta_plus n + (r+ - r-)]; they differ in the
    minimum-distance curve:

    - {b theta_tau}: the paper's recursion
      [d' n = max (d n - (r+ - r-)) (d' (n-1) + r-)] — the repo default,
      with the compact verified-window kernel path;
    - {b jitter}: nonrecursive jitter amplification
      [max 0 (d n - (r+ - r-))], minimum distance dropped (pyCPA
      ['jitter']);
    - {b jitter_offset}: the jitter term with the best-case-response
      serialization floor [(n-1) * r-] (pyCPA ['jitter_offset'] /
      ['jitter_dmin']; stream curves carry no phases, so the offset shift
      itself is invisible here);
    - {b jitter_bmin}: the jitter term with the minimum-service floor
      [(n-1) * bmin] (pyCPA ['jitter_bmin']);
    - {b busy_window}: additionally refines the jitter term with
      per-activation completion times of the maximal busy window
      (Schliecker-style): [min_q (d (n+q-1) - finish q) + r-].  Falls
      back to [jitter_offset] when no completion profile is available;
    - {b optimal}: the pointwise max of every mode's minimum-distance
      curve — tightest sound output, per task. *)

type mode =
  | Theta_tau
  | Jitter
  | Jitter_offset
  | Jitter_bmin
  | Busy_window
  | Optimal

val all_modes : mode list

val mode_name : mode -> string

val mode_of_name : string -> mode option

val pp_mode : Format.formatter -> mode -> unit

(** Per-activation completion data of one maximal busy window: for
    [q = 1 .. Array.length finishes], [arrivals.(q-1)] is the earliest
    arrival of the q-th activation and [finishes.(q-1)] its worst-case
    completion, both relative to the window start. *)
type profile = {
  arrivals : int array;
  finishes : int array;
}

val profile : arrivals:int array -> finishes:int array -> profile
(** Validating constructor (copies its inputs).
    @raise Invalid_argument on length mismatch, empty data, a completion
    before its arrival, or non-monotone columns. *)

val profile_equal : profile -> profile -> bool

val derive :
  ?name:string ->
  mode:mode ->
  response:Timebase.Interval.t ->
  bmin:int ->
  ?profile:profile ->
  Stream.t ->
  Stream.t
(** [derive ~mode ~response ~bmin stream] is the output stream of an
    element with response interval [response] processing [stream], under
    the given propagation mode.  [bmin] is the element's minimum service
    time (floor of the execution / transmission interval); [profile] is
    the busy-window completion data consumed by the [busy_window] and
    [optimal] modes.  [Theta_tau] delegates to {!Task_op.output}
    (including its compact kernel path).

    When the input's minimum-distance curve carries a compact periodic
    tail, the other modes also build compact periodic output curves,
    certified by a verified attainment window (see the implementation
    comment).  Downstream consumers that branch on exact periodic tails
    — notably {!Shaper.delay_bound} — then take their exact path instead
    of heuristic wide-window fallbacks.  When no tail is available (or
    the certificate search hits its cap), the result degrades to an
    equivalent closure-backed stream; values are identical either way.
    @raise Invalid_argument when [bmin < 0]. *)
