module Time = Timebase.Time
module Count = Timebase.Count

type t = {
  name : string;
  dmin : Curve.t;
  dplus : Curve.t;
}

let clamp_low f n = if n <= 1 then Time.zero else f n

let make ~name ~delta_min ~delta_plus =
  {
    name;
    dmin = Curve.make (clamp_low delta_min);
    dplus = Curve.make (clamp_low delta_plus);
  }

let of_curves ~name ~delta_min ~delta_plus =
  {
    name;
    dmin = Curve.clamp_low delta_min;
    dplus = Curve.clamp_low delta_plus;
  }

let name t = t.name

let with_name name t = { t with name }

let delta_min t n = Curve.eval t.dmin n

let delta_plus t n = Curve.eval t.dplus n

let delta_min_curve t = t.dmin

let delta_plus_curve t = t.dplus

let eta_plus t dt =
  if dt <= 0 then Count.zero
  else
    match Curve.count_lt t.dmin (Time.of_int dt) with
    | n -> Count.of_int n
    | exception Curve.Unbounded _ -> Count.Inf

let eta_minus t dt =
  if dt <= 0 then Count.zero
  else
    match Curve.first_gt t.dplus ~offset:2 (Time.of_int dt) with
    | n -> Count.of_int n
    | exception Curve.Unbounded _ -> Count.Inf

(* All the standard constructors produce compact periodic-tail curves, so
   eta queries on them are O(1) arithmetic instead of memoized search. *)

let periodic ~name ~period =
  if period < 1 then invalid_arg "Stream.periodic: period < 1";
  let c =
    Curve.periodic ~prefix:[| period |] ~period_events:1 ~period_time:period
  in
  { name; dmin = c; dplus = c }

let sporadic ~name ~d_min =
  if d_min < 1 then invalid_arg "Stream.sporadic: d_min < 1";
  {
    name;
    dmin =
      Curve.periodic ~prefix:[| d_min |] ~period_events:1 ~period_time:d_min;
    dplus = Curve.make (fun n -> if n <= 1 then Time.zero else Time.Inf);
  }

(* delta_min of the standard event model (P, J, d_min): the d_min branch
   dominates until (n-1) (P - d_min) >= J, after which the curve grows by
   exactly P per event — a compact prefix + period-1 tail. *)
let sem_delta_min_curve ~period ~jitter ~d_min =
  let delta n = Stdlib.max ((n - 1) * d_min) (((n - 1) * period) - jitter) in
  let prefix =
    if d_min >= period then [| period |]
    else begin
      let crossover =
        (jitter + (period - d_min) - 1) / (period - d_min)
      in
      Array.init (Stdlib.max 1 crossover) (fun i -> delta (i + 2))
    end
  in
  Curve.periodic ~prefix ~period_events:1 ~period_time:period

let periodic_jitter ~name ~period ~jitter ?(d_min = 1) () =
  if period < 1 then invalid_arg "Stream.periodic_jitter: period < 1";
  if jitter < 0 then invalid_arg "Stream.periodic_jitter: jitter < 0";
  if d_min < 0 then invalid_arg "Stream.periodic_jitter: d_min < 0";
  if d_min > period then invalid_arg "Stream.periodic_jitter: d_min > period";
  {
    name;
    dmin = sem_delta_min_curve ~period ~jitter ~d_min;
    dplus =
      Curve.periodic ~prefix:[| period + jitter |] ~period_events:1
        ~period_time:period;
  }

let periodic_burst ~name ~period ~burst ~d_min =
  if burst < 1 then invalid_arg "Stream.periodic_burst: burst < 1";
  if d_min < 0 then invalid_arg "Stream.periodic_burst: d_min < 0";
  if (burst - 1) * d_min >= period then
    invalid_arg "Stream.periodic_burst: burst does not fit in period";
  (* Deterministic pattern: event j (0-based) at time
     (j / burst) * period + (j mod burst) * d_min, so the distance covering n
     consecutive events starting at j is position (j+n-1) - position j; the
     extremes over j are attained at burst boundaries.  Distances repeat
     with period [burst] in n (shifting by one burst adds one period), so
     the first [burst] values plus a (burst, period) tail describe the
     whole curve. *)
  let position j = ((j / burst) * period) + (j mod burst * d_min) in
  let dist_over_starts n pick =
    (* distances are periodic in j with period [burst] *)
    let rec scan j acc =
      if j >= burst then acc
      else scan (j + 1) (pick acc (position (j + n - 1) - position j))
    in
    scan 1 (position (n - 1) - position 0)
  in
  {
    name;
    dmin =
      Curve.periodic
        ~prefix:(Array.init burst (fun i -> dist_over_starts (i + 2) Stdlib.min))
        ~period_events:burst ~period_time:period;
    dplus =
      Curve.periodic
        ~prefix:(Array.init burst (fun i -> dist_over_starts (i + 2) Stdlib.max))
        ~period_events:burst ~period_time:period;
  }

let well_formed ?(horizon = 64) t =
  let problem = ref None in
  let fail fmt = Format.kasprintf (fun s -> problem := Some s) fmt in
  if not (Time.equal (delta_min t 0) Time.zero) then
    fail "delta_min 0 <> 0"
  else if not (Time.equal (delta_min t 1) Time.zero) then
    fail "delta_min 1 <> 0"
  else
    for n = 2 to horizon do
      if !problem = None then begin
        if Time.(delta_min t n < delta_min t (n - 1)) then
          fail "delta_min not monotone at n=%d" n
        else if Time.(delta_plus t n < delta_plus t (n - 1)) then
          fail "delta_plus not monotone at n=%d" n
        else if Time.(delta_plus t n < delta_min t n) then
          fail "delta_plus < delta_min at n=%d" n
      end
    done;
  match !problem with
  | None -> Ok ()
  | Some msg -> Error (Printf.sprintf "%s: %s" t.name msg)

let sample_eta_plus t ~dts = List.map (fun dt -> dt, eta_plus t dt) dts

let pp ppf t =
  let prefix curve =
    List.init 6 (fun i -> Curve.eval curve (i + 2))
    |> List.map Time.to_string
    |> String.concat ", "
  in
  Format.fprintf ppf "@[<v 2>stream %s:@ delta_min(2..7) = [%s]@ delta_plus(2..7) = [%s]@]"
    t.name (prefix t.dmin) (prefix t.dplus)
