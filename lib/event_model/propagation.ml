module Time = Timebase.Time
module Interval = Timebase.Interval

type mode =
  | Theta_tau
  | Jitter
  | Jitter_offset
  | Jitter_bmin
  | Busy_window
  | Optimal

let all_modes =
  [ Theta_tau; Jitter; Jitter_offset; Jitter_bmin; Busy_window; Optimal ]

let mode_name = function
  | Theta_tau -> "theta_tau"
  | Jitter -> "jitter"
  | Jitter_offset -> "jitter_offset"
  | Jitter_bmin -> "jitter_bmin"
  | Busy_window -> "busy_window"
  | Optimal -> "optimal"

let mode_of_name = function
  | "theta_tau" -> Some Theta_tau
  | "jitter" -> Some Jitter
  | "jitter_offset" -> Some Jitter_offset
  | "jitter_bmin" -> Some Jitter_bmin
  | "busy_window" -> Some Busy_window
  | "optimal" -> Some Optimal
  | _ -> None

let pp_mode ppf m = Format.pp_print_string ppf (mode_name m)

type profile = {
  arrivals : int array;
  finishes : int array;
}

let profile ~arrivals ~finishes =
  if Array.length arrivals <> Array.length finishes then
    invalid_arg "Propagation.profile: length mismatch";
  if Array.length arrivals = 0 then
    invalid_arg "Propagation.profile: empty profile";
  let ok = ref true in
  for q = 0 to Array.length arrivals - 1 do
    if finishes.(q) < arrivals.(q) then ok := false;
    if q > 0 && (arrivals.(q) < arrivals.(q - 1) || finishes.(q) < finishes.(q - 1))
    then ok := false
  done;
  if not !ok then invalid_arg "Propagation.profile: non-monotone completion data";
  { arrivals = Array.copy arrivals; finishes = Array.copy finishes }

let profile_equal a b =
  a.arrivals = b.arrivals && a.finishes = b.finishes

(* ------------------------------------------------------------------ *)
(* Output delta_min candidates.

   Throughout, [J = r+ - r-] is the response-time spread (output jitter
   amplification) and every candidate is a sound lower bound on the
   distance of [n] consecutive output events:

   - the {e jitter} term [delta_min n - J]: the first of the n outputs
     leaves at the latest [r+] after its arrival, the last at the
     earliest [r-] after its own, and the arrivals are at least
     [delta_min n] apart (Richter's output jitter equation);
   - the {e serialization} floor [(n-1) * r-]: successive completions of
     the same element are at least a best-case response apart;
   - the {e execution} floor [(n-1) * bmin]: each of the n-1 jobs between
     the two boundary outputs costs at least its minimum service time
     after its predecessor's completion, preemption only widens it;
   - the {e busy-window} term
     [min_q (delta_min (n + q - 1) - finish q) + r-]
     (Schliecker-style): if the first of the n outputs is the q-th
     activation of its busy window, it completes no later than
     [window start + finish q], while the last of the n arrives no
     earlier than [window start + delta_min (n + q - 1)] and completes at
     least [r-] after that.  Taking the minimum over every possible
     in-window position [q] covers all cases; the per-activation
     completions refine the single worst-case jitter [J] whenever the
     worst response is not attained by the window's first activation.

   Each candidate is monotone in [n], so any pointwise [max] of them is a
   well-formed distance curve; the [max] of sound lower bounds is itself
   sound, which is also why the [optimal] mode (pointwise max over every
   mode) is sound. *)

let jitter_term stream ~spread n =
  Time.sub_clamped (Stream.delta_min stream n) (Time.of_int spread)

let floor_term rate n = Time.of_int ((n - 1) * rate)

(* Unclamped busy-window candidate.  The subtraction must stay raw: the
   candidate can legitimately be negative and clamping it before the
   outer [max] would raise the minimum unsoundly. *)
let busy_window_term stream ~r_minus ~profile n =
  let q_max = Array.length profile.finishes in
  let best = ref Time.Inf in
  for q = 1 to q_max do
    let d = Stream.delta_min stream (n + q - 1) in
    let candidate =
      match d with
      | Time.Inf -> Time.Inf
      | Time.Fin d -> Time.of_int (d - profile.finishes.(q - 1))
    in
    best := Time.min !best candidate
  done;
  Time.add !best (Time.of_int r_minus)

let delta_min_of_mode ~mode ~r_minus ~spread ~bmin ~profile stream n =
  match mode with
  | Theta_tau | Optimal ->
    invalid_arg "Propagation.delta_min_of_mode: handled by derive"
  | Jitter -> Time.max Time.zero (jitter_term stream ~spread n)
  | Jitter_offset ->
    Time.max (floor_term r_minus n) (jitter_term stream ~spread n)
  | Jitter_bmin ->
    Time.max (floor_term bmin n) (jitter_term stream ~spread n)
  | Busy_window -> begin
    let base =
      Time.max (floor_term r_minus n) (jitter_term stream ~spread n)
    in
    match profile with
    | None -> base
    | Some p -> Time.max base (busy_window_term stream ~r_minus ~profile:p n)
  end

let output_name name stream =
  match name with
  | Some n -> n
  | None -> Printf.sprintf "out(%s)" (Stream.name stream)

(* ------------------------------------------------------------------ *)
(* Compact construction.

   When the input's minimum-distance curve carries a compact periodic
   tail (plen, pe, pt), every candidate term is eventually exactly
   pe-block periodic:

   - the jitter term inherits the input tail: for [n >= plen + 2],
     [term (n + pe) = term n + pt] (curve extension semantics);
   - a floor term with rate [r] satisfies
     [term (n + pe) = term n + pe * r] everywhere;
   - each busy-window candidate is the input curve shifted by [q - 1]
     events minus a constant, so it inherits the input tail, and so does
     the min of the finitely many of them;
   - the Theta_tau curve (optimal mode) exposes its own compact tail
     whose pe-block increment is one of the same rates.

   Let [ptc] be the largest pe-block increment among the terms.  If at
   some index [n] the max is attained by a term with increment [ptc],
   then at [n + pe] that term gained [ptc] while every other term gained
   at most [ptc], so it still attains the max and
   [M (n + pe) = M n + ptc].  Verifying attainment on one full period
   [p+1 .. p+pe] past every term's analytic periodicity start therefore
   certifies [M (n + pe) = M n + ptc] for all [n > p], and the values up
   to [p + pe] are the prefix of an exact compact periodic curve.  If no
   attainment window is found below a cap (the crossover between a slow
   floor and a faster tail sits arbitrarily far out for extreme jitter),
   the caller falls back to the closure-backed stream — never unsound,
   only less compact.  Compactness is what downstream consumers key on:
   [Shaper.delay_bound] takes its exact periodic-tail branch instead of
   the wide-window slope-estimate fallback, which misclassifies
   large-jitter inputs as unbounded. *)

let compact_delta_min_curve ~mode ~r_minus ~spread ~bmin ~profile ?theta
    stream =
  let din = Stream.delta_min_curve stream in
  match Curve.periodic_tail din with
  | None -> None
  | Some (plen, pe, pt) -> begin
    let inf = Curve.packed_inf in
    let floors =
      match mode with
      | Theta_tau -> invalid_arg "Propagation.compact_delta_min_curve"
      | Jitter -> [ 0 ]
      | Jitter_offset -> [ r_minus ]
      | Jitter_bmin -> [ bmin ]
      | Busy_window -> [ r_minus ]
      | Optimal -> [ r_minus; bmin ]
    in
    let q_max =
      match mode, profile with
      | (Busy_window | Optimal), Some p -> Array.length p.finishes
      | _ -> 0
    in
    let theta_tail =
      match theta with
      | None -> Some None
      | Some t -> begin
        match Curve.periodic_tail t with
        | Some (plen_t, pe_t, pt_t) when pe mod pe_t = 0 ->
          Some (Some (plen_t, (pe / pe_t) * pt_t))
        | Some _ | None -> None  (* incompatible block period: bail *)
      end
    in
    match theta_tail with
    | None -> None
    | Some theta_tail ->
      let rmax = List.fold_left Stdlib.max 0 floors in
      let ptc =
        Stdlib.max pt
          (Stdlib.max (pe * rmax)
             (match theta_tail with Some (_, inc) -> inc | None -> 0))
      in
      (* analytic periodicity start of every term *)
      let start =
        Stdlib.max (plen + 2)
          (match theta_tail with Some (p_t, _) -> p_t + 2 | None -> 2)
      in
      let cap = start + (16 * pe) + 8192 in
      (* packed input values for n = 2 .. cap + q_max - 1 *)
      let din_len = cap + q_max in
      let din_v = Array.make din_len 0 in
      Curve.eval_range_into din ~n0:2 ~len:din_len ~dst:din_v ~pos:0;
      let theta_v =
        match theta with
        | None -> [||]
        | Some t ->
          let v = Array.make (cap - 1) 0 in
          Curve.eval_range_into t ~n0:2 ~len:(cap - 1) ~dst:v ~pos:0;
          v
      in
      let fin =
        match profile with
        | Some p when q_max > 0 -> p.finishes
        | _ -> [||]
      in
      let exception Bail in
      (* value and dominant-term value (max over increment-ptc terms) *)
      let term_values n =
        let d = din_v.(n - 2) in
        if d = inf then raise Bail;
        let jit = Stdlib.max 0 (d - spread) in
        let m = ref jit in
        (* the clamp breaks exact pe-block periodicity while [d < spread],
           so the jitter term is only dominant once unclamped *)
        let dom = ref (if pt = ptc && d >= spread then jit else min_int) in
        List.iter
          (fun r ->
            let v = (n - 1) * r in
            if v > !m then m := v;
            if pe * r = ptc && v > !dom then dom := v)
          floors;
        if q_max > 0 then begin
          let best = ref max_int in
          for q = 1 to q_max do
            let d = din_v.(n + q - 3) in
            if d = inf then raise Bail;
            let c = d - fin.(q - 1) in
            if c < !best then best := c
          done;
          let bw = !best + r_minus in
          if bw > !m then m := bw;
          if pt = ptc && bw > !dom then dom := bw
        end;
        (match theta, theta_tail with
         | Some _, Some (_, inc) ->
           let v = theta_v.(n - 2) in
           if v = inf then raise Bail;
           if v > !m then m := v;
           if inc = ptc && v > !dom then dom := v
         | _ -> ());
        !m, !dom
      in
      match
        let values = Array.make (cap - 1) 0 in
        let run = ref 0 in
        let found = ref 0 in
        (try
           let n = ref 2 in
           while !found = 0 && !n <= cap do
             let m, dom = term_values !n in
             values.(!n - 2) <- m;
             if !n >= start && dom = m then begin
               incr run;
               if !run >= pe then found := !n
             end
             else run := 0;
             incr n
           done
         with Bail -> found := -1);
        !found, values
      with
      | 0, _ | -1, _ -> None
      | n, values ->
        (* prefix covers 2 .. n, tail (pe, ptc) certified for all
           indices past p = n - pe *)
        Some (Curve.periodic
                ~prefix:(Array.sub values 0 (n - 1))
                ~period_events:pe ~period_time:ptc)
  end

let compact_delta_plus_curve ~spread stream =
  let dp = Stream.delta_plus_curve stream in
  match Curve.periodic_tail dp with
  | None -> None
  | Some (plen, pe, pt) ->
    let vals = Array.make plen 0 in
    Curve.eval_range_into dp ~n0:2 ~len:plen ~dst:vals ~pos:0;
    if Array.exists (fun v -> v = Curve.packed_inf) vals then None
    else
      Some
        (Curve.periodic
           ~prefix:(Array.map (fun v -> v + spread) vals)
           ~period_events:pe ~period_time:pt)

let derive ?name ~mode ~response ~bmin ?profile stream =
  if bmin < 0 then invalid_arg "Propagation.derive: negative bmin";
  match mode with
  | Theta_tau ->
    (* the exact recursion, including the compact kernel path *)
    Task_op.output ?name ~response stream
  | Jitter | Jitter_offset | Jitter_bmin | Busy_window -> begin
    let r_minus = Interval.lo response in
    let spread = Interval.width response in
    match compact_delta_min_curve ~mode ~r_minus ~spread ~bmin ~profile stream with
    | Some delta_min ->
      let delta_plus =
        match compact_delta_plus_curve ~spread stream with
        | Some c -> c
        | None ->
          Curve.make (fun n ->
              Time.add (Stream.delta_plus stream n) (Time.of_int spread))
      in
      Stream.of_curves ~name:(output_name name stream) ~delta_min ~delta_plus
    | None ->
      let delta_min n =
        delta_min_of_mode ~mode ~r_minus ~spread ~bmin ~profile stream n
      in
      let delta_plus n =
        Time.add (Stream.delta_plus stream n) (Time.of_int spread)
      in
      Stream.make ~name:(output_name name stream) ~delta_min ~delta_plus
  end
  | Optimal -> begin
    (* pointwise-tightest sound output: max of every mode's delta_min
       (delta_plus is the same [+ J] shift in all of them).  Theta_tau
       dominates the nonrecursive jitter family whenever [bmin <= r-]
       (always true for analysed elements, where both come from the same
       response interval), but taking the explicit max keeps dominance
       unconditional for arbitrary caller-supplied [bmin]. *)
    let r_minus = Interval.lo response in
    let spread = Interval.width response in
    let theta = Task_op.output ~response stream in
    let closure () =
      let modes = [ Jitter; Jitter_offset; Jitter_bmin; Busy_window ] in
      let delta_min n =
        List.fold_left
          (fun acc m ->
            Time.max acc
              (delta_min_of_mode ~mode:m ~r_minus ~spread ~bmin ~profile
                 stream n))
          (Stream.delta_min theta n) modes
      in
      let delta_plus n = Stream.delta_plus theta n in
      Stream.make ~name:(output_name name stream) ~delta_min ~delta_plus
    in
    match
      compact_delta_min_curve ~mode ~r_minus ~spread ~bmin ~profile
        ~theta:(Stream.delta_min_curve theta) stream
    with
    | Some delta_min ->
      Stream.of_curves ~name:(output_name name stream) ~delta_min
        ~delta_plus:(Stream.delta_plus_curve theta)
    | None -> closure ()
  end
