(** Eventually-periodic distance curves in closed form.

    Most distance curves arising in practice are {e eventually periodic}:
    after a finite prefix, [delta (n + repeat_events) = delta n +
    repeat_increment] (e.g. a standard event model becomes purely
    periodic once the jitter term dominates, and combinations of such
    streams repeat at the hyper-structure of their inputs).  This module
    represents such curves exactly and finitely — enabling O(1)
    evaluation at any index, decidable equality, and compact printing —
    and detects the representation from an arbitrary memoized curve. *)

type t

val create :
  prefix:int list -> repeat_events:int -> repeat_increment:int -> t
(** [create ~prefix ~repeat_events ~repeat_increment]: [prefix] lists
    [delta 2, delta 3, ...]; indices past the prefix repeat with the
    given recurrence.  The prefix must be at least [repeat_events] long
    so the recurrence base is fully specified.
    @raise Invalid_argument on an unsatisfied length requirement,
    non-monotone prefix, negative values, [repeat_events < 1], or a
    recurrence that would break monotonicity. *)

val eval : t -> int -> int
(** [eval t n] for any [n >= 0] ([0] for [n <= 1]); O(1). *)

val prefix_length : t -> int

val repeat_events : t -> int

val repeat_increment : t -> int

val equal : t -> t -> bool
(** Semantic equality: do the two patterns denote the same curve?
    (Representations may differ in prefix length or repeat multiples.) *)

val to_stream_function : t -> int -> Timebase.Time.t
(** Adapter for {!Stream.make}. *)

val to_curve : t -> Curve.t
(** The pattern as a compact periodic-tail curve: O(1) evaluation and
    arithmetic pseudo-inversion (no exponential search). *)

val of_sem_delta_min : Sem.t -> t
(** The exact pattern of a standard event model's minimum-distance curve
    (prefix covers the burst regime, recurrence is one event per
    period). *)

val detect :
  ?max_prefix:int -> ?max_repeat:int -> ?check:int -> (int -> int) -> t option
(** [detect f] searches for an eventually-periodic representation of the
    monotone curve [f] (indexed like [delta], from [n = 2]): the smallest
    [repeat_events <= max_repeat] (default 64) and prefix length
    [<= max_prefix] (default 256) whose recurrence reproduces [f] on
    [check] (default 128) further indices.  [None] if nothing fits —
    either the curve is not eventually periodic or the bounds are too
    small.

    The result is {e evidence-bounded}: the recurrence is certified on
    the checked window only; a curve whose regime switches later than
    [prefix + check] indices can fool the detection, so pick [check]
    beyond the last index you rely on. *)

val pp : Format.formatter -> t -> unit
