module Time = Timebase.Time
module Metrics = Obs.Metrics

exception Unbounded of string

let search_cap = 1 lsl 22

(* ------------------------------------------------------------------ *)
(* Observability counters, routed through the Obs.Metrics registry.
   Evaluation work is charged to the scopes that were active when the
   curve was *created* (falling back to whichever scopes are active at
   evaluation time for curves built outside any scope, e.g. shared source
   streams), so lazy evaluations of one analysis's memoized streams never
   pollute another analysis's counts even when the two interleave. *)

let c_closure_evals = Metrics.counter "curve.closure_evals"
let c_memo_hits = Metrics.counter "curve.memo_hits"
let c_periodic_evals = Metrics.counter "curve.periodic_evals"
let c_searches = Metrics.counter "curve.searches"
let c_search_steps = Metrics.counter "curve.search_steps"
let c_spill_probes = Metrics.counter "curve.spill_probes"
let c_batch_evals = Metrics.counter "curve.batch_evals"
let c_batch_probe_count = Metrics.counter "curve.batch_probe_count"

type stats = {
  closure_evals : int;
  memo_hits : int;
  periodic_evals : int;
  searches : int;
  search_steps : int;
  spill_probes : int;
  batch_evals : int;
  batch_probe_count : int;
}

let stats_diff a b =
  {
    closure_evals = a.closure_evals - b.closure_evals;
    memo_hits = a.memo_hits - b.memo_hits;
    periodic_evals = a.periodic_evals - b.periodic_evals;
    searches = a.searches - b.searches;
    search_steps = a.search_steps - b.search_steps;
    spill_probes = a.spill_probes - b.spill_probes;
    batch_evals = a.batch_evals - b.batch_evals;
    batch_probe_count = a.batch_probe_count - b.batch_probe_count;
  }

(* ------------------------------------------------------------------ *)
(* Representation.

   [Closure] memoizes an arbitrary monotone function into a dense int
   array indexed directly by [n] (amortised O(1) append, cache-friendly,
   no boxing of the common finite case); probes beyond [dense_cap] spill
   into a hash table so a single deep pseudo-inversion probe cannot
   force a huge allocation.

   [Periodic] is the compact backend: an explicit finite prefix
   (values at n = 2 .. len+1) plus a periodic tail — after the prefix,
   every [period_events] further events cost [period_time] more.  All
   standard event models, periodic-with-burst patterns and fitted SEMs
   have this shape, so evaluation is O(1) at any [n] and
   pseudo-inversion jumps directly into the right period instead of
   exponential search. *)

type closure = {
  mutable f : int -> Time.t;
  mutable dense : int array;
  spill : (int, Time.t) Hashtbl.t;
  att : Metrics.attachment;  (* scopes active at creation *)
  mutable pending_hits : int;
      (* memo hits accumulated locally (one field bump: the hit path runs
         millions of times per analysis and a registry update there costs
         more than the memoized lookup itself) and flushed to
         [c_memo_hits] when stats are read *)
}

(* closures with unflushed hits; emptied by [flush_pending] *)
let dirty_hits : closure list ref = ref []

let flush_pending () =
  let dirty = !dirty_hits in
  dirty_hits := [];
  List.iter
    (fun c ->
      Metrics.add_attached c.att c_memo_hits c.pending_hits;
      c.pending_hits <- 0)
    dirty

(* First hit since the last flush: attached curves enrol in the dirty
   list and defer (their hits are charged to the creation scopes when the
   flush happens); unattached ones must charge the scopes active *now*,
   so they pay the direct registry price on every hit and never enrol
   (pending stays 0). *)
let[@inline never] count_hit_cold c =
  if c.att == [] then Metrics.add_attached [] c_memo_hits 1
  else begin
    dirty_hits := c :: !dirty_hits;
    c.pending_hits <- 1
  end

let[@inline] count_hit c =
  let p = c.pending_hits in
  if p > 0 then c.pending_hits <- p + 1 else count_hit_cold c

let stats_of read =
  flush_pending ();
  {
    closure_evals = read c_closure_evals;
    memo_hits = read c_memo_hits;
    periodic_evals = read c_periodic_evals;
    searches = read c_searches;
    search_steps = read c_search_steps;
    spill_probes = read c_spill_probes;
    batch_evals = read c_batch_evals;
    batch_probe_count = read c_batch_probe_count;
  }

let stats () = stats_of Metrics.total

let stats_in scope = stats_of (Metrics.read scope)

let reset_stats () =
  flush_pending ();
  List.iter Metrics.reset_total
    [
      c_closure_evals; c_memo_hits; c_periodic_evals; c_searches;
      c_search_steps; c_spill_probes; c_batch_evals; c_batch_probe_count;
    ]

type periodic = {
  prefix : int array;  (* values for n = 2 .. length + 1; 0 for n <= 1 *)
  period_events : int;
  period_time : int;
  p_att : Metrics.attachment;
}

type t =
  | Closure of closure
  | Periodic of periodic
  | Constant of Time.t

let backend = function
  | Closure _ -> `Closure
  | Periodic _ -> `Periodic
  | Constant _ -> `Constant

let periodic_tail = function
  | Periodic p -> Some (Array.length p.prefix, p.period_events, p.period_time)
  | Closure _ | Constant _ -> None

(* dense-array memo: [unset] marks a hole, [inf_code] encodes Time.Inf *)
let dense_cap = 1 lsl 15
let unset = min_int
let inf_code = max_int

let encode = function
  | Time.Fin d ->
    if d = unset || d = inf_code then
      invalid_arg "Curve: value out of representable range"
    else d
  | Time.Inf -> inf_code

let decode v = if v = inf_code then Time.Inf else Time.Fin v

let rec next_pow2 k n = if k > n then k else next_pow2 (k * 2) n

let eval_closure c n =
  if n < 0 || n >= dense_cap then begin
    Metrics.add_attached c.att c_spill_probes 1;
    match Hashtbl.find_opt c.spill n with
    | Some v ->
      count_hit c;
      v
    | None ->
      Metrics.add_attached c.att c_closure_evals 1;
      let v = c.f n in
      Hashtbl.add c.spill n v;
      v
  end
  else begin
    let len = Array.length c.dense in
    if n >= len then begin
      let grown = Array.make (Stdlib.max 64 (next_pow2 1 n)) unset in
      Array.blit c.dense 0 grown 0 len;
      c.dense <- grown
    end;
    let v = c.dense.(n) in
    if v = unset then begin
      Metrics.add_attached c.att c_closure_evals 1;
      let t = c.f n in
      c.dense.(n) <- encode t;
      t
    end
    else begin
      count_hit c;
      decode v
    end
  end

let eval_periodic p n =
  Metrics.add_attached p.p_att c_periodic_evals 1;
  if n <= 1 then Time.zero
  else begin
    let i = n - 2 in
    let len = Array.length p.prefix in
    if i < len then Time.of_int p.prefix.(i)
    else begin
      let over = i - (len - 1) in
      let steps = (over + p.period_events - 1) / p.period_events in
      Time.of_int
        (p.prefix.(i - (steps * p.period_events)) + (steps * p.period_time))
    end
  end

let eval t n =
  match t with
  | Closure c -> eval_closure c n
  | Periodic p -> eval_periodic p n
  | Constant v -> v

(* ------------------------------------------------------------------ *)
(* Packed (int-encoded) evaluation.

   The dense memo already stores times order-preservingly encoded as ints
   ([Fin d] as [d], [Inf] as [max_int]); the packed API exposes that
   encoding so hot loops can compare, add and batch time values without
   allocating a [Time.t] per probe.  [packed_inf] compares greater than
   every finite value, so [Stdlib.min] / [Stdlib.max] / [( < )] on packed
   values agree with the [Time] operations as long as finite arithmetic
   never overflows into [max_int] (time values in this codebase are far
   below that). *)

let packed_inf = inf_code

(* O(1) compact-backend evaluation with no allocation and no per-probe
   metrics traffic (callers charge batch counters instead). *)
let[@inline] eval_periodic_packed p n =
  if n <= 1 then 0
  else begin
    let i = n - 2 in
    let len = Array.length p.prefix in
    if i < len then p.prefix.(i)
    else begin
      let over = i - (len - 1) in
      let steps = (over + p.period_events - 1) / p.period_events in
      p.prefix.(i - (steps * p.period_events)) + (steps * p.period_time)
    end
  end

let eval_closure_packed c n =
  if n < 0 || n >= dense_cap then begin
    Metrics.add_attached c.att c_spill_probes 1;
    match Hashtbl.find_opt c.spill n with
    | Some v ->
      count_hit c;
      encode v
    | None ->
      Metrics.add_attached c.att c_closure_evals 1;
      let v = c.f n in
      Hashtbl.add c.spill n v;
      encode v
  end
  else begin
    let len = Array.length c.dense in
    if n >= len then begin
      let grown = Array.make (Stdlib.max 64 (next_pow2 1 n)) unset in
      Array.blit c.dense 0 grown 0 len;
      c.dense <- grown
    end;
    let v = c.dense.(n) in
    if v = unset then begin
      Metrics.add_attached c.att c_closure_evals 1;
      let t = c.f n in
      let e = encode t in
      c.dense.(n) <- e;
      e
    end
    else begin
      count_hit c;
      v
    end
  end

let eval_packed t n =
  match t with
  | Closure c -> eval_closure_packed c n
  | Periodic p ->
    Metrics.add_attached p.p_att c_periodic_evals 1;
    eval_periodic_packed p n
  | Constant v -> encode v

let attachment_of = function
  | Closure c -> c.att
  | Periodic p -> p.p_att
  | Constant _ -> []

let[@inline] count_batch t len =
  let att = attachment_of t in
  Metrics.add_attached att c_batch_evals 1;
  Metrics.add_attached att c_batch_probe_count len

(* Fill [dst.(pos + i) <- eval t (n0 + i)] (packed) for [i < len].  One
   batch-counter bump covers the whole sweep; the compact backend pays no
   per-probe metrics or allocation at all, the closure backend still
   charges each memo miss so "work actually done" stays exact. *)
let eval_range_into t ~n0 ~len ~dst ~pos =
  if len < 0 || pos < 0 || pos + len > Array.length dst then
    invalid_arg "Curve.eval_range_into: bad range";
  if len > 0 then begin
    count_batch t len;
    (match t with
    | Periodic p ->
      for i = 0 to len - 1 do
        dst.(pos + i) <- eval_periodic_packed p (n0 + i)
      done
    | Closure c ->
      for i = 0 to len - 1 do
        dst.(pos + i) <- eval_closure_packed c (n0 + i)
      done
    | Constant v ->
      let e = encode v in
      for i = 0 to len - 1 do
        dst.(pos + i) <- e
      done)
  end

(* Batched probe sweep: one vectorised pass over an arbitrary (possibly
   unsorted, possibly duplicated) probe array.  Results are packed. *)
let eval_batch t probes =
  let len = Array.length probes in
  if len = 0 then [||]
  else begin
    count_batch t len;
    match t with
    | Periodic p ->
      Array.map (fun n -> eval_periodic_packed p n) probes
    | Closure c -> Array.map (fun n -> eval_closure_packed c n) probes
    | Constant v ->
      let e = encode v in
      Array.make len e
  end

(* ------------------------------------------------------------------ *)
(* Constructors *)

let make f =
  Closure
    {
      f;
      dense = [||];
      spill = Hashtbl.create 8;
      att = Metrics.attach ();
      pending_hits = 0;
    }

(* Self-referential memoization: [f] receives the memoized evaluator, so a
   recurrence like delta'(n) = g (delta' (n-1)) costs O(n) total. *)
let make_rec f =
  let c =
    {
      f = (fun _ -> Time.zero);
      dense = [||];
      spill = Hashtbl.create 8;
      att = Metrics.attach ();
      pending_hits = 0;
    }
  in
  let self n = eval_closure c n in
  c.f <- (fun n -> f self n);
  Closure c

let constant v = Constant v

let periodic ~prefix ~period_events ~period_time =
  if period_events < 1 then invalid_arg "Curve.periodic: period_events < 1";
  if period_time < 0 then invalid_arg "Curve.periodic: negative period_time";
  if Array.length prefix < period_events then
    invalid_arg "Curve.periodic: prefix shorter than period_events";
  if Array.exists (fun v -> v < 0) prefix then
    invalid_arg "Curve.periodic: negative distance";
  let len = Array.length prefix in
  for i = 1 to len - 1 do
    if prefix.(i) < prefix.(i - 1) then
      invalid_arg "Curve.periodic: non-monotone prefix"
  done;
  let t =
    {
      prefix = Array.copy prefix;
      period_events;
      period_time;
      p_att = Metrics.attach ();
    }
  in
  (* the recurrence must preserve monotonicity across and beyond the
     prefix boundary; checking two full periods past the prefix pins it
     down forever (eval (n + period_events) = eval n + period_time) *)
  for n = 2 to len + (2 * period_events) + 3 do
    if Time.(eval_periodic t n < eval_periodic t (n - 1)) then
      invalid_arg "Curve.periodic: recurrence breaks monotonicity"
  done;
  Periodic t

let clamp_low t =
  match t with
  | Periodic _ -> t (* already 0 for n <= 1 by construction *)
  | Constant v when Time.equal v Time.zero -> t
  | _ -> make (fun n -> if n <= 1 then Time.zero else eval t n)

(* ------------------------------------------------------------------ *)
(* Pseudo-inversion searches *)

(* Exponential search for the first index in [lo, cap] satisfying [pred],
   followed by binary search.  [pred] must be monotone (false then true). *)
(* The probe count is threaded through the loops and flushed to the
   registry once per search: a per-probe registry bump would dominate the
   search loop itself. *)
let first_satisfying ~lo pred =
  Metrics.incr c_searches;
  (* invariant on bisect entry: not (pred lo) && pred hi *)
  let rec bisect steps lo hi =
    if hi - lo <= 1 then begin
      Metrics.add c_search_steps steps;
      hi
    end
    else
      let mid = lo + ((hi - lo) / 2) in
      if pred mid then bisect (steps + 1) lo mid else bisect (steps + 1) mid hi
  in
  let rec widen steps prev cur =
    if cur > search_cap then begin
      Metrics.add c_search_steps steps;
      raise (Unbounded "Curve: search cap exceeded")
    end
    else if pred cur then bisect (steps + 1) prev cur
    else widen (steps + 1) cur (cur * 2)
  in
  if pred lo then begin
    Metrics.add c_search_steps 1;
    lo
  end
  else widen 1 lo (Stdlib.max 2 (lo * 2))

(* Least n >= 2 with eval n >= limit (or > limit when [strict]), computed
   arithmetically: locate the period block containing the answer, then
   binary-search the (at most period_events wide) window inside it. *)
let periodic_first p ~strict limit =
  Metrics.add_attached p.p_att c_searches 1;
  let steps = ref 0 in
  let sat v =
    Stdlib.incr steps;
    if strict then v > limit else v >= limit
  in
  let flush () = Metrics.add_attached p.p_att c_search_steps !steps in
  let len = Array.length p.prefix in
  let top = p.prefix.(len - 1) in
  (* first index in [lo, hi] whose value satisfies; requires sat hi *)
  let rec bfirst value lo hi =
    if lo >= hi then hi
    else
      let mid = (lo + hi) / 2 in
      if sat (value mid) then bfirst value lo mid else bfirst value (mid + 1) hi
  in
  let result =
    if sat top then bfirst (fun i -> p.prefix.(i)) 0 (len - 1) + 2
    else if p.period_time <= 0 then begin
      flush ();
      raise (Unbounded "Curve: periodic tail never reaches limit")
    end
    else begin
      (* smallest block s >= 1 whose largest value top + s * period_time
         satisfies; earlier blocks are entirely below the limit *)
      let need = limit - top in
      let s =
        if strict then (need / p.period_time) + 1
        else (need + p.period_time - 1) / p.period_time
      in
      let s = Stdlib.max 1 s in
      let base = s * p.period_time in
      let j =
        bfirst (fun j -> p.prefix.(j) + base) (len - p.period_events) (len - 1)
      in
      j + (s * p.period_events) + 2
    end
  in
  flush ();
  result

let count_lt t limit =
  if Time.(limit <= Time.zero) then invalid_arg "Curve.count_lt: limit <= 0";
  match t with
  | Periodic p -> begin
    match limit with
    | Time.Inf ->
      (* a periodic-tail curve is finite everywhere, so the count below an
         infinite limit is unbounded *)
      raise (Unbounded "Curve.count_lt: infinite limit on a finite curve")
    | Time.Fin lim -> periodic_first p ~strict:false lim - 1
  end
  | Closure _ | Constant _ ->
    (* largest n with eval n < limit = (first n >= 1 with eval n >= limit) - 1;
       0 when even eval 1 >= limit *)
    let first_ge = first_satisfying ~lo:1 (fun n -> Time.(eval t n >= limit)) in
    first_ge - 1

let first_gt t ~offset limit =
  match t with
  | Periodic p -> begin
    match limit with
    | Time.Inf ->
      raise (Unbounded "Curve.first_gt: infinite limit on a finite curve")
    | Time.Fin lim ->
      if lim < 0 then 0 (* eval (0 + offset) >= 0 > limit already *)
      else begin
        let m = periodic_first p ~strict:true lim in
        Stdlib.max 0 (m - offset)
      end
  end
  | Closure _ | Constant _ ->
    first_satisfying ~lo:0 (fun n -> Time.(eval t (n + offset) > limit))

(* ------------------------------------------------------------------ *)
(* Packed-limit searches: the same pseudo-inversions with an int limit
   and a resumable lower bound, so convergence loops that re-probe the
   same curves with monotonically growing windows (busy-window
   interference, EDF demand scans) neither allocate a [Time.t] per probe
   nor restart the exponential search from scratch each iteration. *)

(* [periodic_first] with an int limit and no closure/ref churn beyond a
   single step-counting cell per search. *)
(* First index in [lo, hi] with [prefix.(i) + base] satisfying the
   limit; requires the value at [hi] to satisfy.  A module-level
   recursion over plain ints (no closure, no step ref) so the packed
   search allocates nothing; [steps] is the probe count so far, flushed
   to the step counter when the search bottoms out. *)
let rec bfirst_packed att prefix ~strict ~limit ~base ~steps lo hi =
  if lo >= hi then begin
    Metrics.add_attached att c_search_steps steps;
    hi
  end
  else begin
    let mid = (lo + hi) / 2 in
    let v = prefix.(mid) + base in
    let ok = if strict then v > limit else v >= limit in
    if ok then
      bfirst_packed att prefix ~strict ~limit ~base ~steps:(steps + 1) lo mid
    else
      bfirst_packed att prefix ~strict ~limit ~base ~steps:(steps + 1) (mid + 1)
        hi
  end

let periodic_first_packed p ~strict limit =
  Metrics.add_attached p.p_att c_searches 1;
  let len = Array.length p.prefix in
  let top = p.prefix.(len - 1) in
  let top_ok = if strict then top > limit else top >= limit in
  if top_ok then
    (* steps starts at 1: the top probe above *)
    bfirst_packed p.p_att p.prefix ~strict ~limit ~base:0 ~steps:1 0 (len - 1)
    + 2
  else if p.period_time <= 0 then begin
    Metrics.add_attached p.p_att c_search_steps 1;
    raise (Unbounded "Curve: periodic tail never reaches limit")
  end
  else begin
    let need = limit - top in
    let s =
      if strict then (need / p.period_time) + 1
      else (need + p.period_time - 1) / p.period_time
    in
    let s = Stdlib.max 1 s in
    let base = s * p.period_time in
    let j =
      bfirst_packed p.p_att p.prefix ~strict ~limit ~base ~steps:1
        (len - p.period_events) (len - 1)
    in
    j + (s * p.period_events) + 2
  end

(* [count_lt] with a packed finite limit and a verified lower bound:
   callers must guarantee [lo >= 1] and, when [lo > 1],
   [eval t (lo - 1) < limit] (true whenever [lo - 1] is a previous
   [count_lt_packed] answer for a limit [<=] the current one — arrival
   counts grow monotonically with the window). *)
let count_lt_packed t ~lo ~limit =
  if limit <= 0 then invalid_arg "Curve.count_lt: limit <= 0";
  if lo < 1 then invalid_arg "Curve.count_lt_packed: lo < 1";
  match t with
  | Periodic p ->
    if limit >= inf_code then
      raise (Unbounded "Curve.count_lt: infinite limit on a finite curve");
    (* arithmetic location is already O(log period); the hint is not
       needed to stay cheap *)
    periodic_first_packed p ~strict:false limit - 1
  | Closure _ | Constant _ ->
    let first_ge =
      first_satisfying ~lo (fun n -> eval_packed t n >= limit)
    in
    first_ge - 1
