module Time = Timebase.Time

(* Pairwise OR-combination.  Equation (3) is a (min over decompositions,
   max over parts) convolution of the delta_min curves; equation (4),
   rewritten over g_i(k) = delta_plus_i (k + 2), is a (max, min)
   convolution of the g curves.  Both are associative, so the n-ary
   combination is a left fold over pairs. *)

(* Scalar reference implementation (legacy path, kept for the kernel
   agreement oracle and honest before/after benchmarks). *)
let or_pair_scalar a b =
  let dmin_a = Stream.delta_min a
  and dmin_b = Stream.delta_min b in
  let delta_min n =
    if n <= 1 then Time.zero
    else
      let rec scan k best =
        if k > n then best
        else scan (k + 1) (Time.min best (Time.max (dmin_a k) (dmin_b (n - k))))
      in
      scan 1 (Time.max (dmin_a 0) (dmin_b n))
  in
  let g_a k = Stream.delta_plus a (k + 2)
  and g_b k = Stream.delta_plus b (k + 2) in
  let delta_plus n =
    (* delta(0) = delta(1) = 0 by convention; pinning it here (rather than
       relying on the clamp in [Stream.make]) keeps [budget] non-negative,
       so [g_a]/[g_b] are never consulted at the meaningless indices
       -1 / -2 however the closure is reached. *)
    if n <= 1 then Time.zero
    else
      let budget = n - 2 in
      let rec scan k best =
        if k > budget then best
        else scan (k + 1) (Time.max best (Time.min (g_a k) (g_b (budget - k))))
      in
      scan 1 (Time.min (g_a 0) (g_b budget))
  in
  Stream.make ~name:"or-pair" ~delta_min ~delta_plus

(* Batched path: the convolution at index [n] scans every split
   [k + (n - k)], so evaluating the combined curve up to a horizon [N]
   through per-probe memo lookups costs O(N^2) underlying curve probes —
   this is where flat-SEM fitting burnt its 66k periodic evals.  Instead
   each input curve is swept once into a growable packed value table
   (SoA, one [Curve.eval_range_into] per extension) and the scan runs on
   int arrays: O(N) underlying probes total, no allocation per split. *)

let rec next_pow2 k n = if k >= n then k else next_pow2 (k * 2) n

type table = {
  curve : Curve.t;
  offset : int;  (* table index i holds the value at curve index i + offset *)
  mutable buf : int array;
  mutable filled : int;  (* indices 0 .. filled - 1 are valid *)
}

let table curve ~offset = { curve; offset; buf = [||]; filled = 0 }

(* make indices 0 .. n valid *)
let ensure t n =
  if n >= t.filled then begin
    let need = n + 1 in
    if need > Array.length t.buf then begin
      let grown = Array.make (next_pow2 64 need) 0 in
      Array.blit t.buf 0 grown 0 t.filled;
      t.buf <- grown
    end;
    Curve.eval_range_into t.curve ~n0:(t.filled + t.offset)
      ~len:(need - t.filled) ~dst:t.buf ~pos:t.filled;
    t.filled <- need
  end

let or_pair_batched a b =
  let ta = table (Stream.delta_min_curve a) ~offset:0
  and tb = table (Stream.delta_min_curve b) ~offset:0 in
  let delta_min n =
    if n <= 1 then Time.zero
    else begin
      ensure ta n;
      ensure tb n;
      let va = ta.buf and vb = tb.buf in
      (* min over k = 0..n of max (va k) (vb (n - k)); packed comparisons
         agree with Time comparisons (Inf = max_int dominates) *)
      let best = ref (Stdlib.max va.(0) vb.(n)) in
      for k = 1 to n do
        let x = va.(k) and y = vb.(n - k) in
        let v = if x >= y then x else y in
        if v < !best then best := v
      done;
      if !best = Curve.packed_inf then Time.Inf else Time.of_int !best
    end
  in
  (* g_i(k) = delta_plus_i (k + 2): table index k maps to curve index k + 2 *)
  let ga = table (Stream.delta_plus_curve a) ~offset:2
  and gb = table (Stream.delta_plus_curve b) ~offset:2 in
  let delta_plus n =
    if n <= 1 then Time.zero
    else begin
      let budget = n - 2 in
      ensure ga budget;
      ensure gb budget;
      let va = ga.buf and vb = gb.buf in
      (* max over k = 0..budget of min (ga k) (gb (budget - k)) *)
      let best = ref (Stdlib.min va.(0) vb.(budget)) in
      for k = 1 to budget do
        let x = va.(k) and y = vb.(budget - k) in
        let v = if x <= y then x else y in
        if v > !best then best := v
      done;
      if !best = Curve.packed_inf then Time.Inf else Time.of_int !best
    end
  in
  Stream.make ~name:"or-pair" ~delta_min ~delta_plus

let or_pair a b =
  if !Kernels.enabled then or_pair_batched a b else or_pair_scalar a b

let or_combine ?name streams =
  match streams with
  | [] -> invalid_arg "Combine.or_combine: empty stream list"
  | first :: rest ->
    let combined = List.fold_left or_pair first rest in
    let name =
      match name with
      | Some n -> n
      | None ->
        Printf.sprintf "or(%s)"
          (String.concat "," (List.map Stream.name streams))
    in
    Stream.with_name name combined

let and_combine ?name streams =
  match streams with
  | [] -> invalid_arg "Combine.and_combine: empty stream list"
  | _ :: _ ->
    let name =
      match name with
      | Some n -> n
      | None ->
        Printf.sprintf "and(%s)"
          (String.concat "," (List.map Stream.name streams))
    in
    let fold pick f n =
      match List.map (fun s -> f s n) streams with
      | [] -> assert false
      | v :: vs -> List.fold_left pick v vs
    in
    Stream.make ~name
      ~delta_min:(fold Time.min Stream.delta_min)
      ~delta_plus:(fold Time.max Stream.delta_plus)
