module Time = Timebase.Time

(* Pairwise OR-combination.  Equation (3) is a (min over decompositions,
   max over parts) convolution of the delta_min curves; equation (4),
   rewritten over g_i(k) = delta_plus_i (k + 2), is a (max, min)
   convolution of the g curves.  Both are associative, so the n-ary
   combination is a left fold over pairs. *)

let or_pair a b =
  let dmin_a = Stream.delta_min a
  and dmin_b = Stream.delta_min b in
  let delta_min n =
    if n <= 1 then Time.zero
    else
      let rec scan k best =
        if k > n then best
        else scan (k + 1) (Time.min best (Time.max (dmin_a k) (dmin_b (n - k))))
      in
      scan 1 (Time.max (dmin_a 0) (dmin_b n))
  in
  let g_a k = Stream.delta_plus a (k + 2)
  and g_b k = Stream.delta_plus b (k + 2) in
  let delta_plus n =
    (* delta(0) = delta(1) = 0 by convention; pinning it here (rather than
       relying on the clamp in [Stream.make]) keeps [budget] non-negative,
       so [g_a]/[g_b] are never consulted at the meaningless indices
       -1 / -2 however the closure is reached. *)
    if n <= 1 then Time.zero
    else
      let budget = n - 2 in
      let rec scan k best =
        if k > budget then best
        else scan (k + 1) (Time.max best (Time.min (g_a k) (g_b (budget - k))))
      in
      scan 1 (Time.min (g_a 0) (g_b budget))
  in
  Stream.make ~name:"or-pair" ~delta_min ~delta_plus

let or_combine ?name streams =
  match streams with
  | [] -> invalid_arg "Combine.or_combine: empty stream list"
  | first :: rest ->
    let combined = List.fold_left or_pair first rest in
    let name =
      match name with
      | Some n -> n
      | None ->
        Printf.sprintf "or(%s)"
          (String.concat "," (List.map Stream.name streams))
    in
    Stream.with_name name combined

let and_combine ?name streams =
  match streams with
  | [] -> invalid_arg "Combine.and_combine: empty stream list"
  | _ :: _ ->
    let name =
      match name with
      | Some n -> n
      | None ->
        Printf.sprintf "and(%s)"
          (String.concat "," (List.map Stream.name streams))
    in
    let fold pick f n =
      match List.map (fun s -> f s n) streams with
      | [] -> assert false
      | v :: vs -> List.fold_left pick v vs
    in
    Stream.make ~name
      ~delta_min:(fold Time.min Stream.delta_min)
      ~delta_plus:(fold Time.max Stream.delta_plus)
