module Time = Timebase.Time

let delay_bound ?(horizon = 4096) ~d stream =
  if d < 1 then invalid_arg "Shaper.delay_bound: d < 1";
  (* Backlog deficit after q events arriving as fast as possible: the q-th
     event leaves the shaper no earlier than (q-1)*d after the first, but
     may arrive as early as delta_min q after it.  The delay is unbounded
     exactly when the input's long-run rate exceeds the shaper rate 1/d. *)
  let scan_max_scalar q_max =
    let rec scan q worst =
      if q > q_max then worst
      else
        match Stream.delta_min stream q with
        | Time.Inf -> worst
        | Time.Fin dist -> scan (q + 1) (Stdlib.max worst (((q - 1) * d) - dist))
    in
    scan 2 0
  in
  (* Batched variant for the compact path: one range sweep fills a packed
     scratch array, the deficit scan then runs allocation-free on ints.
     Only used where every value is finite (compact curves are finite
     everywhere), so no per-probe Inf check is needed. *)
  let scan_max_batched q_max =
    if q_max < 2 then 0
    else begin
      let curve = Stream.delta_min_curve stream in
      let len = q_max - 1 in
      let vals = Array.make len 0 in
      Curve.eval_range_into curve ~n0:2 ~len ~dst:vals ~pos:0;
      let worst = ref 0 in
      for q = 2 to q_max do
        let deficit = ((q - 1) * d) - vals.(q - 2) in
        if deficit > !worst then worst := deficit
      done;
      !worst
    end
  in
  let scan_max q_max =
    if !Kernels.enabled then scan_max_batched q_max else scan_max_scalar q_max
  in
  match Curve.periodic_tail (Stream.delta_min_curve stream) with
  | Some (prefix_len, period_events, period_time) ->
    (* Exact long-run rate from the compact tail: [period_events] events
       every [period_time].  The backlog diverges iff the input admits
       more than one event per [d] in the long run. *)
    if period_time < period_events * d then Time.Inf
    else
      (* Once past the prefix, each tail period adds [period_events * d]
         to the drain and [period_time >= period_events * d] to the
         distance, so the deficit is non-increasing from period to
         period; its maximum is attained within the prefix plus one tail
         period (scan a second period to be safe at the boundary). *)
      Time.of_int (scan_max (prefix_len + (2 * period_events) + 1))
  | None ->
    (* Closure-backed curve: estimate the long-run rate from the distance
       growth over the second half of the horizon.  A transient (jitter
       burst) is confined to the first half for any jitter below
       [d * horizon / 2]; sustained over-rate input keeps the average
       step below [d] forever and is classified unbounded. *)
    let rate_exceeded =
      let half = horizon / 2 in
      match
        (Stream.delta_min stream horizon, Stream.delta_min stream (horizon - half))
      with
      | Time.Inf, _ | _, Time.Inf -> false
      | Time.Fin hi, Time.Fin lo -> hi - lo < half * d
    in
    if rate_exceeded then Time.Inf
    else
      (* closure values can be Inf (e.g. sporadic-derived): keep the
         early-stopping scalar scan *)
      Time.of_int (scan_max_scalar horizon)

let enforce_min_distance ?name ?horizon ~d stream =
  if d < 1 then invalid_arg "Shaper.enforce_min_distance: d < 1";
  let delay = delay_bound ?horizon ~d stream in
  let delta_min n =
    Time.max (Stream.delta_min stream n) (Time.of_int ((n - 1) * d))
  in
  let delta_plus n = Time.add (Stream.delta_plus stream n) delay in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "shaped(%s,d=%d)" (Stream.name stream) d
  in
  Stream.make ~name ~delta_min ~delta_plus
