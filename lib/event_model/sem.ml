module Time = Timebase.Time
module Count = Timebase.Count

type t = {
  period : int;
  jitter : int;
  d_min : int;
}

let make ~period ?(jitter = 0) ?(d_min = 1) () =
  if period < 1 then invalid_arg "Sem.make: period < 1";
  if jitter < 0 then invalid_arg "Sem.make: jitter < 0";
  if d_min < 0 then invalid_arg "Sem.make: d_min < 0";
  if d_min > period then
    (* a minimum distance above the period would contradict the long-run
       rate: delta_min would overtake delta_plus *)
    invalid_arg "Sem.make: d_min > period";
  { period; jitter; d_min }

let periodic period = make ~period ()

let delta_min t n =
  if n <= 1 then Time.zero
  else
    Time.of_int
      (Stdlib.max ((n - 1) * t.d_min) (((n - 1) * t.period) - t.jitter))

let delta_plus t n =
  if n <= 1 then Time.zero else Time.of_int (((n - 1) * t.period) + t.jitter)

(* ceil (a / b) for a >= 0, b >= 1 *)
let ceil_div a b = (a + b - 1) / b

let eta_plus t dt =
  if dt <= 0 then Count.zero
  else begin
    (* largest n with delta_min n < dt; both constraints must hold *)
    let by_period = ((dt + t.jitter - 1) / t.period) + 1 in
    let n =
      if t.d_min = 0 then by_period
      else Stdlib.min by_period (((dt - 1) / t.d_min) + 1)
    in
    Count.of_int n
  end

let eta_minus t dt =
  if dt <= 0 then Count.zero
  else begin
    (* least n >= 0 with delta_plus (n+2) > dt, i.e. (n+1)P + J > dt *)
    let n = ceil_div (dt - t.jitter + 1) t.period - 1 in
    Count.of_int (Stdlib.max 0 n)
  end

let to_stream ?name t =
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "sem(P=%d,J=%d,d=%d)" t.period t.jitter t.d_min
  in
  (* compact periodic-tail curves: O(1) evaluation and pseudo-inversion *)
  Stream.periodic_jitter ~name ~period:t.period ~jitter:t.jitter
    ~d_min:t.d_min ()

let fit ?(horizon = 256) s =
  if horizon < 3 then invalid_arg "Sem.fit: horizon < 3";
  let dmin_at n =
    match Stream.delta_min s n with
    | Time.Fin d -> d
    | Time.Inf ->
      invalid_arg "Sem.fit: stream admits finitely many events"
  in
  (* The slope over the tail half of the sampled range estimates the
     long-run period without the bias of initial bursts; any residual
     over- or under-estimate is absorbed by the jitter term below, which
     keeps the fit conservative on the sampled range. *)
  let mid = Stdlib.max 2 (horizon / 2) in
  let period =
    Stdlib.max 1 ((dmin_at horizon - dmin_at mid) / (horizon - mid))
  in
  let rec scan n jitter d_min =
    if n > horizon then jitter, d_min
    else
      let d = dmin_at n in
      let jitter = Stdlib.max jitter (((n - 1) * period) - d) in
      let d_min = Stdlib.min d_min (d / (n - 1)) in
      scan (n + 1) jitter d_min
  in
  let jitter, d_min = scan 2 0 max_int in
  let d_min =
    if d_min = max_int then Stdlib.min 1 period
    else Stdlib.min period (Stdlib.max 0 d_min)
  in
  make ~period ~jitter ~d_min ()

let equal a b = a.period = b.period && a.jitter = b.jitter && a.d_min = b.d_min

let pp ppf t =
  Format.fprintf ppf "{P=%d; J=%d; d_min=%d}" t.period t.jitter t.d_min
