module Time = Timebase.Time
module Interval = Timebase.Interval

(* Scalar reference: memoized recurrence (legacy path, kept for the
   kernel agreement oracle and before/after benchmarks). *)
let output_curves_scalar ~r_minus ~spread stream =
  let delta_min =
    Curve.make_rec (fun self n ->
      if n <= 1 then Time.zero
      else
        Time.max
          (Time.sub_clamped (Stream.delta_min stream n) (Time.of_int spread))
          (Time.add (self (n - 1)) (Time.of_int r_minus)))
  in
  let delta_plus =
    Curve.make (fun n ->
      if n <= 1 then Time.zero
      else Time.add (Stream.delta_plus stream n) (Time.of_int spread))
  in
  (delta_min, delta_plus)

(* ------------------------------------------------------------------ *)
(* Compact construction.

   When the input delta_min is compact periodic (prefix length [plen],
   tail [(pe, pt)]), the output recurrence

     out n = max (max (in n - spread) 0) (out (n-1) + r)

   is itself eventually periodic: unrolling gives
   [out n = n*r + max (-r) (G n)] with
   [G n = max over 2 <= k <= n of (in k - spread - k*r)], and
   [in (n + pe) = in n + pt] holds for every [n >= max 2 (plen+2-pe)]
   (inside the prefix the representation maps tail indices back onto the
   last [pe] prefix entries).  With [delta = pt - pe*r]:

   - [delta <= 0]: the chain term wins: [G] is constant from
     [p0 = plen+1+pe] on, so [out (n+1) = out n + r] — tail [(1, r)].
   - [delta > 0]: the arrival term wins eventually — tail [(pe, pt)].

   Rather than trusting the closed form, the constructor computes the
   exact recurrence up to a candidate prefix end [p] and {e verifies} one
   full period beyond it ([out n = out (n - pe') + pt'] for
   [p < n <= p + pe]).  That check is a sound certificate: both the
   candidate curve and the true recurrence then shift additively
   ([X (n+pe) = X n + pt'*(pe/pe')], [c (n+pe) <= c n + pt] with equality
   beyond the clamp point), so agreement on one period propagates to all
   larger [n] by induction.  For the [(pe, pt)] tail the clamp
   [max (in n - spread) 0] must already be inactive throughout the tail
   ([in n >= spread] from [n_c] on), hence the [n_c + pe] floor on [p];
   for the [(1, r)] tail the inequality direction suffices.  If the
   window check fails the prefix is extended; past a cap the constructor
   falls back to the scalar closure, so compactness is an optimisation,
   never a change in semantics. *)

let rec grow_to arr n =
  let len = Array.length !arr in
  if n >= len then begin
    let grown = Array.make (Stdlib.max 64 (grow_len len n)) 0 in
    Array.blit !arr 0 grown 0 len;
    arr := grown
  end

and grow_len len n =
  let rec go k = if k > n then k else go (k * 2) in
  go (Stdlib.max 64 len)

let compact_delta_min ~r ~spread in_curve =
  match Curve.periodic_tail in_curve with
  | None -> None
  | Some (plen, pe, pt) ->
    if r < 0 || spread < 0 then None
    else begin
      let delta = pt - (pe * r) in
      let pe', pt' = if delta > 0 then (pe, pt) else (1, r) in
      let cap = plen + (8 * pe) + 4096 in
      let n_c =
        if delta <= 0 || spread = 0 then 2
        else
          (* first n with in n >= spread; in grows without bound here
             (pt > pe*r >= 0) so the search terminates *)
          1 + Curve.count_lt_packed in_curve ~lo:1 ~limit:spread
      in
      if n_c > cap then None
      else begin
        let p0 = plen + 1 + pe in
        let start =
          Stdlib.max
            (Stdlib.max p0 (pe + 1))
            (if delta > 0 then n_c + pe else 2)
        in
        let inv = ref [||] and out = ref [||] in
        let filled = ref 0 in
        (* make indices 0 .. n of both tables valid *)
        let ensure n =
          if n >= !filled then begin
            grow_to inv n;
            grow_to out n;
            let n0 = !filled in
            Curve.eval_range_into in_curve ~n0 ~len:(n + 1 - n0) ~dst:!inv
              ~pos:n0;
            let iv = !inv and ov = !out in
            for k = n0 to n do
              if k <= 1 then ov.(k) <- 0
              else begin
                let arrival = iv.(k) - spread in
                let arrival = if arrival < 0 then 0 else arrival in
                let chain = ov.(k - 1) + r in
                ov.(k) <- (if arrival >= chain then arrival else chain)
              end
            done;
            filled := n + 1
          end
        in
        let rec attempt p =
          if p > cap then None
          else begin
            ensure (p + pe);
            let ov = !out in
            let ok = ref true in
            for n = p + 1 to p + pe do
              if ov.(n) <> ov.(n - pe') + pt' then ok := false
            done;
            if not !ok then attempt (p + pe)
            else begin
              let prefix = Array.sub ov 2 (p - 1) in
              match
                Curve.periodic ~prefix ~period_events:pe' ~period_time:pt'
              with
              | curve -> Some curve
              | exception Invalid_argument _ -> None
            end
          end
        in
        attempt start
      end
    end

let compact_delta_plus ~spread in_plus =
  match Curve.periodic_tail in_plus with
  | None -> None
  | Some (plen, pe, pt) ->
    if spread < 0 then None
    else begin
      (* out n = in n + spread for n >= 2 inherits the tail verbatim *)
      let prefix = Array.make plen 0 in
      Curve.eval_range_into in_plus ~n0:2 ~len:plen ~dst:prefix ~pos:0;
      for i = 0 to plen - 1 do
        prefix.(i) <- prefix.(i) + spread
      done;
      match Curve.periodic ~prefix ~period_events:pe ~period_time:pt with
      | curve -> Some curve
      | exception Invalid_argument _ -> None
    end

let output ?name ~response stream =
  let r_minus = Interval.lo response in
  let spread = Interval.width response in
  let scalar () = output_curves_scalar ~r_minus ~spread stream in
  let delta_min, delta_plus =
    if not !Kernels.enabled then scalar ()
    else begin
      let dmin =
        compact_delta_min ~r:r_minus ~spread (Stream.delta_min_curve stream)
      in
      let dplus = compact_delta_plus ~spread (Stream.delta_plus_curve stream) in
      match (dmin, dplus) with
      | Some dm, Some dp -> (dm, dp)
      | Some dm, None ->
        let _, dp = scalar () in
        (dm, dp)
      | None, Some dp ->
        let dm, _ = scalar () in
        (dm, dp)
      | None, None -> scalar ()
    end
  in
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "out(%s)" (Stream.name stream)
  in
  Stream.of_curves ~name ~delta_min ~delta_plus
