(** Greedy minimum-distance shapers.

    A shaper delays events just enough to enforce a minimum inter-event
    distance [d] on its output; shapers are the standard traffic-smoothing
    stream operation of compositional analysis frameworks. *)

val enforce_min_distance :
  ?name:string -> ?horizon:int -> d:int -> Stream.t -> Stream.t
(** [enforce_min_distance ~d stream] is the output of a greedy shaper with
    minimum distance [d].

    - [delta_min' n = max (delta_min n) ((n-1) * d)]
    - [delta_plus' n = delta_plus n + delay_bound], where [delay_bound] is
      the maximum backlog delay
      [max over q of ((q-1) * d - delta_min q)], evaluated over
      [q <= horizon] (default 4096).

    The delay bound is exact when the input's long-run rate does not
    exceed [1/d] and its worst-case burst is reached within [horizon]
    events (true for standard event models and their combinations); an
    input rate above [1/d] makes the backlog unbounded and the resulting
    [delta_plus'] is infinite.

    @raise Invalid_argument if [d < 1]. *)

val delay_bound : ?horizon:int -> d:int -> Stream.t -> Timebase.Time.t
(** The shaper backlog-delay bound described at
    {!enforce_min_distance}; [Inf] when the input's long-run rate exceeds
    [1/d].

    When the input's [delta_min] curve has a compact periodic tail
    ({!Curve.periodic_tail}) the rate comparison and the deficit maximum
    are exact at any jitter and [horizon] is ignored.  For closure-backed
    curves the long-run rate is estimated from the distance growth over
    the second half of [horizon] events, which classifies correctly as
    long as transient bursts span less than [d * horizon / 2] time. *)
