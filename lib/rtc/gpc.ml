type result = {
  delay : int option;
  backlog : int option;
  output_upper : Curve.t option;
  remaining_lower : Curve.t;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b = a / gcd a b * b

let remaining_service ~arrival_upper ~service_lower =
  (* beta' dt = max over 0 <= s <= dt of (beta s - alpha (s + 1)), clamped
     at 0 and computed with a running maximum; the [s + 1] closes the
     half-open arrival window (see {!Curve.horizontal_deviation}) *)
  let beta, alpha = Curve.harmonise service_lower arrival_upper in
  let h = Stdlib.max (Curve.horizon beta) (Curve.horizon alpha) in
  let witness dt = Curve.eval beta dt - Curve.eval alpha (dt + 1) in
  let samples = Array.make (h + 1) 0 in
  let best = ref 0 in
  for dt = 0 to h do
    best := Stdlib.max !best (witness dt);
    samples.(dt) <- Stdlib.max 0 !best
  done;
  (* tail rate: service rate minus arrival rate over one common period
     (exact, not a window-difference estimate).  When positive, the
     witness beta - alpha advances by exactly that integral amount per
     period beyond the sampled range, so probing one period certifies
     the anchor slack; when zero the monotone running maximum makes the
     flat anchor sound as is. *)
  let nb, db = Curve.tail_rate beta and na, da = Curve.tail_rate alpha in
  let l = lcm db da in
  let num = (nb * (l / db)) - (na * (l / da)) in
  if num <= 0 then
    Curve.of_samples ~kind:Curve.Lower ~tail_rate:(0, 1) ~tail_offset:0 samples
  else begin
    let anchor = samples.(h) in
    let slack = ref 0 in
    for x = 1 to l do
      let d = anchor + (x * num / l) - witness (h + x) in
      if d > !slack then slack := d
    done;
    Curve.of_samples ~kind:Curve.Lower ~tail_rate:(num, l)
      ~tail_offset:(- !slack) samples
  end

let process ~arrival_upper ~service_lower =
  {
    delay = Curve.horizontal_deviation ~upper:arrival_upper ~lower:service_lower;
    backlog = Curve.vertical_deviation ~upper:arrival_upper ~lower:service_lower;
    output_upper =
      (* alpha (/) beta directly against the lower service curve; an
         overloaded component (arrival rate > service rate) has no
         finite-rate output bound, which deconvolution reports as
         Unstable rather than silently truncating the supremum *)
      (match Curve.min_plus_deconv arrival_upper service_lower with
       | c -> Some c
       | exception Curve.Unstable _ -> None);
    remaining_lower = remaining_service ~arrival_upper ~service_lower;
  }

type fp_task = {
  name : string;
  arrival_upper : Curve.t;
}

let fixed_priority_chain ~service tasks =
  let rec chain beta acc = function
    | [] -> List.rev acc
    | task :: rest ->
      let result = process ~arrival_upper:task.arrival_upper ~service_lower:beta in
      chain result.remaining_lower ((task.name, result) :: acc) rest
  in
  chain service [] tasks
