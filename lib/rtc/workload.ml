module Count = Timebase.Count
module Stream = Event_model.Stream

let events stream dt =
  match Stream.eta_plus stream dt with
  | Count.Fin n -> n
  | Count.Inf -> invalid_arg "Rtc.Workload: unbounded arrivals"

let floor_events stream dt =
  match Stream.eta_minus stream dt with
  | Count.Fin n -> n
  | Count.Inf -> invalid_arg "Rtc.Workload: infinite guaranteed arrivals"

(* Tail-rate window selection: [certified] uses rate (g window / window),
   so the window that minimises (Upper) or maximises (Lower) that
   fraction gives the tightest provable tail.  Scanning a bounded
   candidate range keeps tail denominators small (they drive the lcm
   periods of every downstream (min,+) certification); ties prefer the
   smaller window for the same reason. *)
let pick_window ~horizon ~better g =
  let limit = Stdlib.min horizon 128 in
  let best = ref 1 and best_v = ref (g 1) in
  let consider w =
    let v = g w in
    (* compare v/w against best_v/best without floats *)
    if better (v * !best) (!best_v * w) then begin
      best := w;
      best_v := v
    end
  in
  for w = 2 to limit do
    consider w
  done;
  (* Long-window ladder: a stream whose period exceeds the dense range
     would otherwise get its rate from a window shorter than one
     inter-arrival distance — up to period/128 times too steep for an
     Upper tail, the dual shortfall for Lower.  Geometric spacing keeps
     the candidate count logarithmic while landing within a factor of
     two of any optimal window up to the horizon. *)
  let w = ref (2 * limit) in
  while !w < horizon do
    consider !w;
    w := 2 * !w
  done;
  if horizon > limit then consider horizon;
  !best

let arrival_upper ~horizon ~wcet stream =
  if wcet < 1 then invalid_arg "Rtc.Workload.arrival_upper: wcet < 1";
  if horizon < 1 then invalid_arg "Rtc.Workload.arrival_upper: horizon < 1";
  let g dt = wcet * events stream dt in
  (* eta_plus is subadditive (any window splits into two), so the
     slack-anchor tail of [certified] is sound at every point past the
     horizon — unlike a window-difference estimate, which can undershoot
     the true long-run rate and eventually dip below eta_plus * wcet. *)
  let window = pick_window ~horizon ~better:( < ) g in
  Curve.certified ~kind:Curve.Upper ~horizon ~window g

let arrival_lower ~horizon ~bcet stream =
  if bcet < 1 then invalid_arg "Rtc.Workload.arrival_lower: bcet < 1";
  if horizon < 1 then invalid_arg "Rtc.Workload.arrival_lower: horizon < 1";
  let g dt = bcet * floor_events stream dt in
  (* eta_minus is superadditive (worst windows concatenate), dual of the
     upper case: a window-difference estimate can overshoot the long-run
     guaranteed rate and eventually promise more arrivals than the
     stream guarantees.  Streams with no lower bound get g = 0 on the
     whole candidate range, hence a certified zero tail. *)
  let window = pick_window ~horizon ~better:( > ) g in
  Curve.certified ~kind:Curve.Lower ~horizon ~window g

let service_full ~horizon =
  Curve.linear ~kind:Curve.Lower ~horizon ~rate:(1, 1)

let service_rate ~horizon ~rate = Curve.linear ~kind:Curve.Lower ~horizon ~rate

let service_tdma ~horizon ~slot ~cycle =
  if slot < 1 || cycle < slot then
    invalid_arg "Rtc.Workload.service_tdma: need 1 <= slot <= cycle";
  let g dt =
    let effective = dt - (cycle - slot) in
    if effective <= 0 then 0
    else ((effective / cycle) * slot) + Stdlib.min slot (effective mod cycle)
  in
  (* worst-case TDMA service is superadditive; g cycle = slot recovers
     the exact slot/cycle rate and the certified anchor absorbs the
     within-cycle phase (the raw anchor at an arbitrary horizon point can
     otherwise overshoot the guarantee by up to a slot) *)
  let horizon = Stdlib.max horizon cycle in
  Curve.certified ~kind:Curve.Lower ~horizon ~window:cycle g

let service_bounded_delay ~horizon ~delay ~rate =
  if delay < 0 then invalid_arg "Rtc.Workload.service_bounded_delay: delay < 0";
  let num, den = rate in
  (* floor ((dt - delay) * num / den) is superadditive in dt and grows by
     exactly floor (y * num / den) at least when the horizon advances by
     y, so the raw anchor is already certified *)
  Curve.create ~kind:Curve.Lower ~horizon ~tail_rate:rate (fun dt ->
    if dt <= delay then 0 else (dt - delay) * num / den)

let service_delayed ~blocking beta =
  if blocking < 0 then
    invalid_arg "Rtc.Workload.service_delayed: negative blocking";
  Curve.shift_right blocking beta
