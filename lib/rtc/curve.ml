type kind =
  | Upper
  | Lower

(* Beyond [horizon] the curve continues from [samples.(horizon) +
   tail_offset] with slope [rate_num/rate_den] (rounded up for Upper,
   down for Lower).  [tail_offset] carries certification slack: a
   conservative shift of the tail anchor that must not corrupt the exact
   sample at the horizon itself (deviation scans rely on exact
   samples). *)
type t = {
  kind : kind;
  samples : int array;  (* index dt in 0..horizon *)
  rate_num : int;
  rate_den : int;
  tail_offset : int;
}

exception Unstable of string

let create ~kind ~horizon ~tail_rate f =
  if horizon < 1 then invalid_arg "Rtc.Curve.create: horizon < 1";
  let rate_num, rate_den = tail_rate in
  if rate_den < 1 then invalid_arg "Rtc.Curve.create: tail denominator < 1";
  if rate_num < 0 then invalid_arg "Rtc.Curve.create: negative tail rate";
  {
    kind;
    samples = Array.init (horizon + 1) f;
    rate_num;
    rate_den;
    tail_offset = 0;
  }

let of_samples ~kind ~tail_rate ~tail_offset samples =
  if Array.length samples < 2 then
    invalid_arg "Rtc.Curve.of_samples: horizon < 1";
  let rate_num, rate_den = tail_rate in
  if rate_den < 1 then
    invalid_arg "Rtc.Curve.of_samples: tail denominator < 1";
  if rate_num < 0 then invalid_arg "Rtc.Curve.of_samples: negative tail rate";
  { kind; samples = Array.copy samples; rate_num; rate_den; tail_offset }

let kind t = t.kind

let horizon t = Array.length t.samples - 1

let tail_rate t = t.rate_num, t.rate_den

let tail_offset t = t.tail_offset

let ceil_div a b = (a + b - 1) / b

let eval t dt =
  if dt < 0 then invalid_arg "Rtc.Curve.eval: negative window";
  let h = horizon t in
  if dt <= h then t.samples.(dt)
  else begin
    let extra = t.rate_num * (dt - h) in
    let slope =
      match t.kind with
      | Upper -> ceil_div extra t.rate_den
      | Lower -> extra / t.rate_den
    in
    t.samples.(h) + t.tail_offset + slope
  end

let linear ~kind ~horizon ~rate =
  let num, den = rate in
  let f dt =
    match kind with
    | Upper -> ceil_div (dt * num) den
    | Lower -> dt * num / den
  in
  create ~kind ~horizon ~tail_rate:rate f

(* rate comparison without floats: n1/d1 <= n2/d2 *)
let rate_le (n1, d1) (n2, d2) = n1 * d2 <= n2 * d1

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b = a / gcd a b * b

let tail_min a b = if rate_le a b then a else b

let tail_max a b = if rate_le a b then b else a

(* Tail-rate coarsening: re-expressing an Upper tail over a new
   denominator rounds the rate up, a Lower tail down — both strictly
   conservative, so samples and anchor slack stay valid.  Binary
   operations harmonise their arguments when the lcm of the
   denominators would make certification probes (and certified search
   limits) too wide; 720 divides evenly by every period up to 6 and
   keeps every probe loop small. *)
let coarsen_to den t =
  if den mod t.rate_den = 0 then t
  else
    let num =
      match t.kind with
      | Upper -> ceil_div (t.rate_num * den) t.rate_den
      | Lower -> t.rate_num * den / t.rate_den
    in
    { t with rate_num = num; rate_den = den }

let harmonise ?(cap = 720) a b =
  if lcm a.rate_den b.rate_den <= cap then a, b
  else coarsen_to cap a, coarsen_to cap b

(* Sum of two rates expressed over the lcm of the denominators, so that
   one combined period advances the tail by an exact integer. *)
let tail_add (n1, d1) (n2, d2) =
  let l = lcm d1 d2 in
  (n1 * (l / d1)) + (n2 * (l / d2)), l

(* Certified tail anchor: given witness functions [ws] that are exactly
   pseudo-periodic beyond [h] with period [l] (each advances by its own
   integral rate per [l], at least [rate] for Upper / at most [rate] for
   Lower), a tail of slope [rate] anchored at [anchor +/- slack] bounds
   every witness for all dt > h.  [l] must be a multiple of the rate
   denominator. *)
let probe_slack ~kind ~h ~l ~rate:(num, den) ~anchor ws =
  let slack = ref 0 in
  List.iter
    (fun w ->
      for x = 1 to l do
        let d =
          match kind with
          | Upper -> w (h + x) - anchor - ceil_div (x * num) den
          | Lower -> anchor + (x * num / den) - w (h + x)
        in
        if d > !slack then slack := d
      done)
    ws;
  !slack

let signed_offset kind slack =
  match kind with Upper -> slack | Lower -> -slack

type op =
  | Op_add
  | Op_min
  | Op_max

(* Pointwise combination with a certified tail.  The result samples the
   exact pointwise combination up to the larger horizon; the tail is
   certified against witnesses that provably dominate (Upper) or are
   dominated by (Lower) the combination beyond it:
   - add: the combination itself (exactly pseudo-periodic beyond h);
   - Upper min / Lower max: the curve whose rate was selected (the
     result never exceeds / never falls below it asymptotically);
   - Upper max / Lower min: both curves (the result must stay above /
     below each of them). *)
let combine op a b =
  if a.kind <> b.kind then invalid_arg "Rtc.Curve.combine: kind mismatch";
  let a, b = harmonise a b in
  let f =
    match op with
    | Op_add -> ( + )
    | Op_min -> Stdlib.min
    | Op_max -> Stdlib.max
  in
  let ra = a.rate_num, a.rate_den and rb = b.rate_num, b.rate_den in
  let rate =
    match op with
    | Op_add -> tail_add ra rb
    | Op_min -> tail_min ra rb
    | Op_max -> tail_max ra rb
  in
  let l = lcm a.rate_den b.rate_den in
  let h = Stdlib.max (horizon a) (horizon b) in
  let c dt = f (eval a dt) (eval b dt) in
  let selected = if rate == ra then a else b in
  let witnesses =
    match op, a.kind with
    | Op_add, _ -> [ c ]
    | Op_min, Upper | Op_max, Lower -> [ eval selected ]
    | Op_max, Upper | Op_min, Lower -> [ eval a; eval b ]
  in
  let anchor = c h in
  let slack = probe_slack ~kind:a.kind ~h ~l ~rate ~anchor witnesses in
  {
    kind = a.kind;
    samples = Array.init (h + 1) c;
    rate_num = fst rate;
    rate_den = snd rate;
    tail_offset = signed_offset a.kind slack;
  }

let add a b = combine Op_add a b

let min a b = combine Op_min a b

let max a b = combine Op_max a b

(* Generic pointwise combination.  Samples through the larger horizon
   (the gap region a shorter curve used to cover with its tail is now
   exact) and audits the declared tail against the combination over two
   combined periods.  This is certified only when the combination is
   pseudo-periodic with the declared rate beyond the common horizon —
   true for the [add]/[min]/[max] instances, which use provably
   sufficient witnesses instead; prefer those. *)
let map2 f tail a b =
  if a.kind <> b.kind then invalid_arg "Rtc.Curve.map2: kind mismatch";
  let a, b = harmonise a b in
  let rate = tail (a.rate_num, a.rate_den) (b.rate_num, b.rate_den) in
  let l0 = lcm a.rate_den b.rate_den in
  let l = l0 * ceil_div (snd rate) (gcd l0 (snd rate)) in
  let h = Stdlib.max (horizon a) (horizon b) in
  let c dt = f (eval a dt) (eval b dt) in
  let anchor = c h in
  let slack = probe_slack ~kind:a.kind ~h ~l:(2 * l) ~rate ~anchor [ c ] in
  {
    kind = a.kind;
    samples = Array.init (h + 1) c;
    rate_num = fst rate;
    rate_den = snd rate;
    tail_offset = signed_offset a.kind slack;
  }

(* Certified sub/superadditive construction (slack-anchor): for
   subadditive g (Upper) take num = g(window), den = window and
   slack = max over m in 1..window of (g m - ceil (m*num/den)).  By
   induction on x (g(x) <= g(x-den) + g(den), and g(den) = num exactly)
   g(x) <= slack + ceil (x*num/den) for every x >= 1, hence
   g(h+y) <= g(h) + g(y) <= g(h) + slack + ceil (y*num/den): the tail
   anchored at samples(h) + slack is sound at every point past the
   horizon.  Dual with floors for superadditive g (Lower). *)
let certified ~kind ~horizon ~window g =
  if horizon < 1 then invalid_arg "Rtc.Curve.certified: horizon < 1";
  if window < 1 || window > horizon then
    invalid_arg "Rtc.Curve.certified: need 1 <= window <= horizon";
  let num = g window and den = window in
  if num < 0 then invalid_arg "Rtc.Curve.certified: negative rate";
  let slack = ref 0 in
  for m = 1 to window do
    let d =
      match kind with
      | Upper -> g m - ceil_div (m * num) den
      | Lower -> (m * num / den) - g m
    in
    if d > !slack then slack := d
  done;
  {
    kind;
    samples = Array.init (horizon + 1) g;
    rate_num = num;
    rate_den = den;
    tail_offset = signed_offset kind !slack;
  }

let shift_right delay t =
  if delay < 0 then invalid_arg "Rtc.Curve.shift_right: negative delay";
  if t.kind <> Lower then
    invalid_arg "Rtc.Curve.shift_right: shifting an upper curve right is \
                 not conservative";
  if delay = 0 then t
  else begin
    let h = horizon t + delay in
    let samples =
      Array.init (h + 1) (fun dt -> if dt < delay then 0 else eval t (dt - delay))
    in
    (* samples.(h) = eval t (horizon t) exactly, so the shifted tail
       reproduces the original tail point-for-point *)
    { t with samples }
  end

let min_plus_conv f g =
  if f.kind <> g.kind then invalid_arg "Rtc.Curve.min_plus_conv: kind mismatch";
  (* the Lower branch's horizon grows by two lcm periods, and every
     sample costs a linear scan: keep the combined period tight *)
  let f, g = harmonise ~cap:240 f g in
  let value dt =
    let rec scan s best =
      if s > dt then best
      else scan (s + 1) (Stdlib.min best (eval f s + eval g (dt - s)))
    in
    scan 1 (eval f 0 + eval g dt)
  in
  let rf = f.rate_num, f.rate_den and rg = g.rate_num, g.rate_den in
  let ((num, den) as rate) = tail_min rf rg in
  match f.kind with
  | Upper ->
    (* conv(dt) <= f 0 + g_w dt where g_w is the slower-rate argument:
       a linear-tail witness with exactly the selected rate *)
    let h = Stdlib.max (horizon f) (horizon g) in
    let w = if rate == rf then f else g in
    let witness dt = eval (if w == f then g else f) 0 + eval w dt in
    let anchor = value h in
    let slack = probe_slack ~kind:Upper ~h ~l:den ~rate ~anchor [ witness ] in
    {
      kind = Upper;
      samples = Array.init (h + 1) value;
      rate_num = num;
      rate_den = den;
      tail_offset = slack;
    }
  | Lower ->
    (* For dt >= hf + hg + 2l the minimising split of dt + l has one leg
       at least l beyond its curve's horizon, where retracting that leg
       by l lowers it by exactly its integral per-period rate >= the
       selected rate: conv(dt + l) >= conv(dt) + l*num/den.  One period
       of probes past such a horizon therefore certifies the whole
       tail. *)
    let l = lcm f.rate_den g.rate_den in
    let h = horizon f + horizon g + (2 * l) in
    let anchor = value h in
    let slack = probe_slack ~kind:Lower ~h ~l ~rate ~anchor [ value ] in
    {
      kind = Lower;
      samples = Array.init (h + 1) value;
      rate_num = num;
      rate_den = den;
      tail_offset = -slack;
    }

(* Mixed kinds are deliberately allowed: the standard output bound
   alpha' = alpha (/) beta subtracts a *lower* service curve from an
   upper arrival curve.  Re-wrapping beta as Upper-kind first would flip
   its tail rounding from floor to ceil, overstate the service past the
   horizon, and make the output curve optimistic by up to a unit. *)
let min_plus_deconv f g =
  let f, g = harmonise f g in
  let rf = f.rate_num, f.rate_den and rg = g.rate_num, g.rate_den in
  if not (rate_le rf rg) then
    raise
      (Unstable
         (Printf.sprintf
            "Rtc.Curve.min_plus_deconv: numerator rate %d/%d exceeds \
             denominator rate %d/%d (the supremum is unbounded)"
            f.rate_num f.rate_den g.rate_num g.rate_den));
  (* With rate f <= rate g, shifting the lag s by one common period l
     changes f(dt+s) - g(s) by (integral rate of f over l) - (integral
     rate of g over l) <= 0 once both legs are past their horizons, so
     the supremum over s is attained within max horizon + l. *)
  let l = lcm f.rate_den g.rate_den in
  let search_limit = Stdlib.max (horizon f) (horizon g) + l in
  let value dt =
    let rec scan s best =
      if s > search_limit then best
      else scan (s + 1) (Stdlib.max best (eval f (dt + s) - eval g s))
    in
    scan 1 (eval f dt - eval g 0)
  in
  (* Beyond h = max horizon every f-leg sits past f's horizon, so the
     whole supremum advances by exactly rate_num per rate_den of f:
     probing one f-period past h certifies the tail. *)
  let h = Stdlib.max (horizon f) (horizon g) in
  let anchor = value h in
  let slack =
    probe_slack ~kind:f.kind ~h ~l:f.rate_den ~rate:rf ~anchor [ value ]
  in
  {
    kind = f.kind;
    samples = Array.init (h + 1) value;
    rate_num = f.rate_num;
    rate_den = f.rate_den;
    tail_offset = signed_offset f.kind slack;
  }

(* The deviations account for the half-open arrival-window convention of
   this library: [upper dt] covers the arrivals at instants
   [t .. t + dt - 1], so the service available to the last of them by
   relative instant [t + dt - 1 + tau] is [lower (dt - 1 + tau)].

   Both searches are certified: when rate upper <= rate lower, advancing
   dt by one common period changes the deviation monotonically downward
   (vertical) or cannot increase the required tau (horizontal) once both
   curves are past their horizons, so the supremum over dt is attained
   within max horizon + lcm of the denominators. *)

let deviation_limit ~upper ~lower =
  Stdlib.max (horizon upper) (horizon lower + 1)
  + lcm upper.rate_den lower.rate_den

let vertical_deviation ~upper ~lower =
  if not (upper.kind = Upper && lower.kind = Lower) then
    invalid_arg "Rtc.Curve.vertical_deviation: expected (upper, lower)";
  let upper, lower = harmonise upper lower in
  if
    not
      (rate_le (upper.rate_num, upper.rate_den)
         (lower.rate_num, lower.rate_den))
  then None
  else begin
    let limit = deviation_limit ~upper ~lower in
    let rec scan dt best =
      if dt > limit then Some best
      else scan (dt + 1) (Stdlib.max best (eval upper dt - eval lower (dt - 1)))
    in
    scan 1 0
  end

let horizontal_deviation ~upper ~lower =
  if not (upper.kind = Upper && lower.kind = Lower) then
    invalid_arg "Rtc.Curve.horizontal_deviation: expected (upper, lower)";
  let upper, lower = harmonise upper lower in
  if
    not
      (rate_le (upper.rate_num, upper.rate_den)
         (lower.rate_num, lower.rate_den))
  then None
  else begin
    let limit = deviation_limit ~upper ~lower in
    (* inf {tau | upper dt <= lower (dt - 1 + tau)} per dt >= 1; the lower
       curve is monotone so tau is found by forward search *)
    let delay_at dt =
      let demand = eval upper dt in
      let rec advance tau =
        if tau > 8 * limit then None
        else if eval lower (dt - 1 + tau) >= demand then Some tau
        else advance (tau + 1)
      in
      advance 0
    in
    let rec scan dt best =
      if dt > limit then Some best
      else begin
        match delay_at dt with
        | None -> None
        | Some tau -> scan (dt + 1) (Stdlib.max best tau)
      end
    in
    scan 1 0
  end

let pp ppf t =
  let h = horizon t in
  let prefix =
    List.init (Stdlib.min 8 (h + 1)) (fun i -> string_of_int t.samples.(i))
  in
  Format.fprintf ppf "%s curve [%s ...] tail %d/%d%s"
    (match t.kind with Upper -> "upper" | Lower -> "lower")
    (String.concat "; " prefix) t.rate_num t.rate_den
    (if t.tail_offset = 0 then ""
     else Printf.sprintf " (anchor %+d)" t.tail_offset)
