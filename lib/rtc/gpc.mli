(** Greedy processing components and fixed-priority chains.

    The basic abstraction of modular performance analysis (Thiele et
    al.): a component greedily serves the workload bounded by an arrival
    curve from the service bounded by a service curve.  Delay and backlog
    are the horizontal and vertical deviations; the remaining (lower)
    service is what the next-lower priority level receives, which chains
    components into a fixed-priority resource model.

    Overload is reported honestly: a component whose arrival rate
    exceeds its service rate gets [None] for delay, backlog {e and}
    output curve — no bound is silently derived from a truncated
    search. *)

type result = {
  delay : int option;
      (** worst-case queueing+processing delay; [None] if unbounded *)
  backlog : int option;
      (** workload backlog bound; [None] if unbounded *)
  output_upper : Curve.t option;
      (** upper arrival curve of the processed workload downstream;
          [None] when the component is overloaded (unbounded output
          supremum) *)
  remaining_lower : Curve.t;
      (** lower service curve left for lower-priority components *)
}

val remaining_service :
  arrival_upper:Curve.t -> service_lower:Curve.t -> Curve.t
(** The lower service curve left after greedily serving [arrival_upper]
    from [service_lower] — exposed on its own so per-task service
    derivations (hybrid local analyses with shared priority levels) can
    skip the deviation computations of {!process}. *)

val process : arrival_upper:Curve.t -> service_lower:Curve.t -> result
(** Standard GPC bounds:
    [delay = h-deviation], [backlog = v-deviation],
    [output = arrival (/) service] (deconvolved against the lower
    service curve directly, keeping its floor-rounded tail), and
    [remaining dt = max over 0 <= s <= dt of (service s - arrival (s+1))]
    with an exact per-period tail rate and a certified anchor. *)

type fp_task = {
  name : string;
  arrival_upper : Curve.t;  (** workload-scaled arrival curve *)
}

val fixed_priority_chain :
  service:Curve.t -> fp_task list -> (string * result) list
(** [fixed_priority_chain ~service tasks] processes [tasks] from highest
    to lowest priority (list order), feeding each level the remaining
    service of the previous one — the RTC counterpart of the SPP
    busy-window analysis. *)
