(** Arrival and service curves for the RTC view of a system.

    Arrival curves here are in {e workload units} (execution demand), not
    event counts: the event bounds of an {!Event_model.Stream} are scaled
    by the worst-case execution time, which is the form the greedy
    processing component consumes.

    All tails are certified conservative: arrival curves through the
    sub/superadditive slack-anchor construction of {!Curve.certified},
    service curves either by the same construction ({!service_tdma}) or
    because their closed form makes the raw anchor provably sound. *)

val arrival_upper :
  horizon:int -> wcet:int -> Event_model.Stream.t -> Curve.t
(** [eta_plus dt * wcet] sampled on the horizon.  The tail rate is the
    best [g w / w] over a bounded window range, certified by
    subadditivity of [eta_plus]: the rounded-up tail never dips below
    [eta_plus dt * wcet] at any [dt] past the horizon. *)

val arrival_lower :
  horizon:int -> bcet:int -> Event_model.Stream.t -> Curve.t
(** [eta_minus dt * bcet], dual certification via superadditivity (the
    rounded-down tail never exceeds the guaranteed demand); a stream
    with no lower bound yields a certified zero tail. *)

val service_full : horizon:int -> Curve.t
(** Unit-rate lower service curve of a fully available resource:
    [beta dt = dt]. *)

val service_rate : horizon:int -> rate:int * int -> Curve.t

val service_tdma : horizon:int -> slot:int -> cycle:int -> Curve.t
(** Guaranteed lower service of a TDMA slot under worst alignment (the
    same bound as {!Scheduling.Tdma.service}), with the tail anchored
    through {!Curve.certified} so the within-cycle phase at the horizon
    cannot make the extension optimistic.  The horizon is widened to at
    least one cycle. *)

val service_bounded_delay : horizon:int -> delay:int -> rate:int * int -> Curve.t
(** [beta dt = max 0 ((dt - delay) * rate)]. *)

val service_delayed : blocking:int -> Curve.t -> Curve.t
(** [service_delayed ~blocking beta] shifts a lower service curve right
    by a blocking term (SPNP: lower-priority non-preemptable section):
    [beta' dt = beta (dt - blocking)]. *)
