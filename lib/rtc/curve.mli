(** Numeric real-time-calculus curves.

    The compositional approach of Thiele et al. (the paper's references
    [3], [10], [11]) describes workload and service as arrival/service
    curves and couples components with (min,+) algebra.  This module
    implements curves numerically: exact samples on a finite horizon,
    extended beyond it by a rational tail rate (rounded up for upper
    curves, down for lower curves) from a {e certified} anchor.

    Certification is the module's soundness contract: every operation
    that must extrapolate past sampled data either proves its tail
    conservative (witness probes over one exact pseudo-period, the
    slack-anchor construction of {!certified}) or refuses
    ({!Unstable}).  Tail slack is carried in a separate anchor offset so
    sampled values stay exact. *)

type kind =
  | Upper  (** an upper bound; tail extension rounds up *)
  | Lower  (** a lower bound; tail extension rounds down *)

type t

exception Unstable of string
(** Raised by {!min_plus_deconv} when the numerator curve's tail rate
    exceeds the denominator's: the supremum is unbounded and no finite
    curve represents it. *)

val create :
  kind:kind -> horizon:int -> tail_rate:int * int -> (int -> int) -> t
(** [create ~kind ~horizon ~tail_rate f] samples [f] on [0..horizon];
    beyond the horizon the curve continues with slope
    [fst tail_rate / snd tail_rate] anchored at [f horizon].  The caller
    asserts the tail is conservative for the function being bounded —
    prefer {!certified} when the function is sub/superadditive.
    @raise Invalid_argument if [horizon < 1], the denominator is [< 1],
    or the numerator is negative. *)

val of_samples :
  kind:kind -> tail_rate:int * int -> tail_offset:int -> int array -> t
(** [of_samples ~kind ~tail_rate ~tail_offset samples] wraps explicit
    samples (index = window size, so [samples.(0)] is the empty window)
    with a tail anchored at [samples.(horizon) + tail_offset].  The
    caller asserts tail soundness.  The array is copied. *)

val certified : kind:kind -> horizon:int -> window:int -> (int -> int) -> t
(** [certified ~kind ~horizon ~window g] builds a curve with a tail that
    is {e provably} conservative for [g] at every point past the
    horizon, provided [g] is subadditive ([Upper]) or superadditive
    ([Lower]): the tail rate is [(g window, window)] and the anchor is
    shifted by the worst slack of the rounded tail against [g] on
    [1..window] (sub/superadditivity extends the bound by induction).
    A larger [window] tightens the rate estimate at the cost of a
    coarser tail denominator downstream. *)

val kind : t -> kind

val horizon : t -> int

val tail_rate : t -> int * int
(** The slope used beyond the horizon, as [(numerator, denominator)]. *)

val tail_offset : t -> int
(** Certification slack applied to the tail anchor (non-negative for
    [Upper], non-positive for [Lower]); [eval] past the horizon starts
    from [samples horizon + tail_offset]. *)

val eval : t -> int -> int
(** Defined for every [dt >= 0] (tail extension past the horizon). *)

val linear : kind:kind -> horizon:int -> rate:int * int -> t
(** The curve [dt * num / den] (a fully available resource has
    [rate = (1, 1)]). *)

val rate_le : int * int -> int * int -> bool
(** [rate_le (n1, d1) (n2, d2)] is [n1/d1 <= n2/d2], exactly. *)

val harmonise : ?cap:int -> t -> t -> t * t
(** Coarsen both curves' tail rates onto denominator [cap] (default 720)
    when the lcm of their denominators exceeds it — Upper rates round
    up, Lower rates round down, so the originals are still bounded.
    Keeps certification probe periods and certified search limits small
    for downstream (min,+) work on incommensurate periods. *)

val map2 :
  (int -> int -> int) -> (int * int -> int * int -> int * int) -> t -> t -> t
(** [map2 f tail a b] combines pointwise with [f] and combines tail
    rates with [tail]; the result keeps [a]'s kind and samples through
    the {e larger} horizon (the gap a shorter curve used to cover with
    its tail extension is exact in the result).  The declared tail is
    audited against the combination over two combined periods past the
    horizon; this certifies it only when the combination is
    pseudo-periodic with the declared rate out there — true for
    {!add}/{!min}/{!max}, which use provably sufficient witnesses
    instead and should be preferred.
    @raise Invalid_argument on differing kinds. *)

val add : t -> t -> t
(** Pointwise sum with a certified tail (rate = sum of rates). *)

val min : t -> t -> t
(** Pointwise minimum with a certified tail (rate = smaller rate; for
    [Upper] curves the tail is certified against the slower curve, so it
    stays conservative even when the pointwise minimum switches branches
    arbitrarily far past the horizon). *)

val max : t -> t -> t
(** Pointwise maximum with a certified tail (rate = larger rate). *)

val shift_right : int -> t -> t
(** [shift_right d t] is the curve [dt -> t (dt - d)] (zero before [d]):
    a service curve delayed by a blocking term.  The horizon grows by
    [d] so the tail reproduces the original tail point-for-point.
    @raise Invalid_argument on [Upper] curves (delaying an upper bound
    is not conservative) or negative [d]. *)

val min_plus_conv : t -> t -> t
(** [(f (x) g) dt = min over 0 <= s <= dt of f s + g (dt - s)].
    Certified: for [Upper] arguments the tail is bounded by the witness
    [f 0 + g dt] (slower argument); for [Lower] arguments the horizon
    extends far enough that one probe period proves the tail (the
    minimising split always has a leg in a tail's exact linear
    region). *)

val min_plus_deconv : t -> t -> t
(** [(f (/) g) dt = max over s >= 0 of f (dt + s) - g s].  The supremum
    is certified to be attained within [max horizon + lcm] of the tail
    denominators when [rate f <= rate g]; the result's tail (rate of
    [f]) is certified by one probe period.  The kinds may differ — the
    standard output bound deconvolves an upper arrival curve by a
    {e lower} service curve, whose floor-rounded tail must be used as
    is (re-wrapping it as [Upper] would overstate the service); the
    result takes [f]'s kind.
    @raise Unstable when [rate f > rate g] (unbounded supremum). *)

val vertical_deviation : upper:t -> lower:t -> int option
(** [sup over dt of upper dt - lower (dt - 1)] — the buffer/backlog
    bound; [None] when [rate upper > rate lower] (the supremum is
    unbounded).  The search range is certified: past
    [max horizon + lcm] of the denominators the deviation can only
    shrink per period. *)

val horizontal_deviation : upper:t -> lower:t -> int option
(** [sup over dt of inf {tau | upper dt <= lower (dt - 1 + tau)}] — the
    delay bound; [None] when [rate upper > rate lower] or no finite
    bound exists in the certified range. *)

val pp : Format.formatter -> t -> unit
