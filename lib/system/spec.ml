type activation =
  | From_source of string
  | From_output of string
  | From_signal of {
      frame : string;
      signal : string;
    }
  | From_frame of string
  | Or_of of activation list
  | And_of of activation list

type scheduler =
  | Spp
  | Spnp
  | Tdma
  | Round_robin
  | Edf

type backend = Cpa | Rtc

type resource = {
  res_name : string;
  scheduler : scheduler;
  backend : backend;
}

let resource ?(backend = Cpa) ~name scheduler =
  { res_name = name; scheduler; backend }

type task = {
  task_name : string;
  resource : string;
  cet : Timebase.Interval.t;
  priority : int;
  service : int option;
  deadline : int option;
  activation : activation;
  propagation : Event_model.Propagation.mode option;
}

type signal_binding = {
  signal_name : string;
  property : Hem.Model.signal_kind;
  origin : activation;
}

type frame = {
  frame_name : string;
  bus : string;
  send_type : Comstack.Frame.send_type;
  tx_time : Timebase.Interval.t;
  frame_priority : int;
  signals : signal_binding list;
}

type t = {
  sources : (string * Event_model.Stream.t) list;
  resources : resource list;
  tasks : task list;
  frames : frame list;
  default_propagation : Event_model.Propagation.mode;
}

let task ~name ~resource ~cet ~priority ?service ?deadline ?propagation
    ~activation () =
  { task_name = name; resource; cet; priority; service; deadline; activation;
    propagation }

let signal ~name ?(property = Hem.Model.Triggering) ~origin () =
  { signal_name = name; property; origin }

let frame ~name ~bus ~send_type ~tx_time ~priority ~signals () =
  { frame_name = name; bus; send_type; tx_time; frame_priority = priority;
    signals }

let make ~sources ~resources ~tasks ?(frames = [])
    ?(default_propagation = Event_model.Propagation.Theta_tau) () =
  { sources; resources; tasks; frames; default_propagation }

let task_propagation t k =
  match k.propagation with
  | Some m -> m
  | None -> t.default_propagation

let with_propagation ?task:task_name mode t =
  match task_name with
  | None -> { t with default_propagation = mode }
  | Some name ->
    {
      t with
      tasks =
        List.map
          (fun k ->
            if String.equal k.task_name name then
              { k with propagation = Some mode }
            else k)
          t.tasks;
    }

(* ------------------------------------------------------------------ *)
(* Canonical digest *)

(* Streams are opaque pairs of memoized curves, so they are fingerprinted
   behaviourally: a prefix of both distance functions plus two deep
   probes that expose the periodic tail.  Any parameter edit to a
   standard constructor (period, jitter, d_min, burst) changes one of the
   sampled values. *)
let fingerprint_stream buffer s =
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let probe f n = add " %s" (Timebase.Time.to_string (f s n)) in
  add "dmin";
  for n = 2 to 34 do
    probe Event_model.Stream.delta_min n
  done;
  probe Event_model.Stream.delta_min 64;
  probe Event_model.Stream.delta_min 101;
  add " dplus";
  for n = 2 to 34 do
    probe Event_model.Stream.delta_plus n
  done;
  probe Event_model.Stream.delta_plus 64;
  probe Event_model.Stream.delta_plus 101

let canonical_into buffer t =
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let by_name name_of = List.sort (fun a b -> String.compare (name_of a) (name_of b)) in
  let rec add_activation = function
    | From_source s -> add "(source %s)" s
    | From_output o -> add "(output %s)" o
    | From_signal { frame; signal } -> add "(signal %s %s)" frame signal
    | From_frame f -> add "(frame %s)" f
    | Or_of acts ->
      add "(or";
      List.iter add_activation acts;
      add ")"
    | And_of acts ->
      add "(and";
      List.iter add_activation acts;
      add ")"
  in
  let add_interval i =
    add "[%d:%d]" (Timebase.Interval.lo i) (Timebase.Interval.hi i)
  in
  (* Emitted only when non-default so pre-existing digests stay stable:
     a spec that never mentions propagation renders exactly as before. *)
  (match t.default_propagation with
   | Event_model.Propagation.Theta_tau -> ()
   | m -> add "propagation %s;" (Event_model.Propagation.mode_name m));
  List.iter
    (fun (name, stream) ->
      add "source %s " name;
      fingerprint_stream buffer stream;
      add ";")
    (by_name fst t.sources);
  List.iter
    (fun r ->
      let scheduler =
        match r.scheduler with
        | Spp -> "spp"
        | Spnp -> "spnp"
        | Tdma -> "tdma"
        | Round_robin -> "rr"
        | Edf -> "edf"
      in
      (* backend emitted only when non-default so pre-existing digests
         stay stable: a pure-CPA spec renders exactly as before. *)
      let backend = match r.backend with Cpa -> "" | Rtc -> " backend=rtc" in
      add "resource %s %s%s;" r.res_name scheduler backend)
    (by_name (fun r -> r.res_name) t.resources);
  List.iter
    (fun k ->
      add "task %s res=%s cet=" k.task_name k.resource;
      add_interval k.cet;
      add " prio=%d" k.priority;
      (match k.service with Some s -> add " service=%d" s | None -> ());
      (match k.deadline with Some d -> add " deadline=%d" d | None -> ());
      (match k.propagation with
       | Some m -> add " prop=%s" (Event_model.Propagation.mode_name m)
       | None -> ());
      add " act=";
      add_activation k.activation;
      add ";")
    (by_name (fun k -> k.task_name) t.tasks);
  List.iter
    (fun f ->
      add "frame %s bus=%s send=" f.frame_name f.bus;
      (match f.send_type with
       | Comstack.Frame.Direct -> add "direct"
       | Comstack.Frame.Periodic p -> add "periodic:%d" p
       | Comstack.Frame.Mixed p -> add "mixed:%d" p);
      add " tx=";
      add_interval f.tx_time;
      add " prio=%d" f.frame_priority;
      List.iter
        (fun s ->
          add " (signal %s %s "
            s.signal_name
            (match s.property with
             | Hem.Model.Triggering -> "triggering"
             | Hem.Model.Pending -> "pending");
          add_activation s.origin;
          add ")")
        (by_name (fun s -> s.signal_name) f.signals);
      add ";")
    (by_name (fun f -> f.frame_name) t.frames)

let canonical t =
  let buffer = Buffer.create 1024 in
  canonical_into buffer t;
  Buffer.contents buffer

(* [digest_with] renders into a caller-owned scratch buffer so a batch
   of digests (an exploration sweep digesting hundreds of specs per
   worker) reuses one grown buffer instead of re-allocating and
   re-growing a fresh one per spec.  The digest itself is unchanged:
   same canonical bytes, same hex. *)
let digest_with buffer t =
  Buffer.clear buffer;
  canonical_into buffer t;
  Digest.to_hex (Digest.string (Buffer.contents buffer))

let digest t = Digest.to_hex (Digest.string (canonical t))

let find_duplicate names =
  let sorted = List.sort String.compare names in
  let rec scan = function
    | a :: (b :: _ as rest) -> if String.equal a b then Some a else scan rest
    | [ _ ] | [] -> None
  in
  scan sorted

let validate t =
  let source_names = List.map fst t.sources in
  let task_names = List.map (fun k -> k.task_name) t.tasks in
  let frame_names = List.map (fun f -> f.frame_name) t.frames in
  let resource_names = List.map (fun r -> r.res_name) t.resources in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec check_activation ctx = function
    | From_source s ->
      if List.mem s source_names then Ok ()
      else fail "%s references unknown source %s" ctx s
    | From_output name ->
      if List.mem name task_names then Ok ()
      else fail "%s references unknown task output %s" ctx name
    | From_signal { frame; signal } -> begin
      match List.find_opt (fun f -> String.equal f.frame_name frame) t.frames with
      | None -> fail "%s references unknown frame %s" ctx frame
      | Some f ->
        if List.exists (fun s -> String.equal s.signal_name signal) f.signals
        then Ok ()
        else fail "%s references unknown signal %s of frame %s" ctx signal frame
    end
    | From_frame frame ->
      if List.mem frame frame_names then Ok ()
      else fail "%s references unknown frame %s" ctx frame
    | Or_of [] -> fail "%s has an empty OR activation" ctx
    | And_of [] -> fail "%s has an empty AND activation" ctx
    | Or_of acts | And_of acts ->
      List.fold_left
        (fun acc a -> match acc with Ok () -> check_activation ctx a | e -> e)
        (Ok ()) acts
  in
  let check_task k =
    if not (List.mem k.resource resource_names) then
      fail "task %s mapped to unknown resource %s" k.task_name k.resource
    else begin
      let scheduler =
        (List.find (fun r -> String.equal r.res_name k.resource) t.resources)
          .scheduler
      in
      match scheduler, k.service, k.deadline with
      | (Tdma | Round_robin), None, _ ->
        fail "task %s needs a service parameter on a %s resource" k.task_name
          k.resource
      | (Tdma | Round_robin), Some s, _ when s < 1 ->
        fail "task %s has a service parameter < 1" k.task_name
      | Edf, _, None ->
        fail "task %s needs a deadline on the EDF resource %s" k.task_name
          k.resource
      | Edf, _, Some d when d < 1 ->
        fail "task %s has a deadline < 1" k.task_name
      | (Spp | Spnp | Tdma | Round_robin | Edf), _, _ ->
        check_activation (Printf.sprintf "task %s" k.task_name) k.activation
    end
  in
  let check_frame f =
    match List.find_opt (fun r -> String.equal r.res_name f.bus) t.resources with
    | None -> fail "frame %s mapped to unknown bus %s" f.frame_name f.bus
    | Some { scheduler = Spnp; _ } ->
      if f.signals = [] then fail "frame %s has no signals" f.frame_name
      else begin
        match find_duplicate (List.map (fun s -> s.signal_name) f.signals) with
        | Some d -> fail "frame %s has duplicate signal %s" f.frame_name d
        | None ->
          List.fold_left
            (fun acc s ->
              match acc with
              | Ok () ->
                check_activation
                  (Printf.sprintf "signal %s of frame %s" s.signal_name
                     f.frame_name)
                  s.origin
              | e -> e)
            (Ok ()) f.signals
      end
    | Some { scheduler = Spp | Tdma | Round_robin | Edf; _ } ->
      fail "frame %s must be mapped to an SPNP bus" f.frame_name
  in
  let all_checks =
    [
      (fun () ->
        match find_duplicate (source_names @ task_names @ frame_names) with
        | Some d -> fail "duplicate element name %s" d
        | None -> Ok ());
      (fun () ->
        match find_duplicate resource_names with
        | Some d -> fail "duplicate resource name %s" d
        | None -> Ok ());
      (fun () ->
        match
          List.find_opt
            (fun r -> r.backend = Rtc && r.scheduler = Edf)
            t.resources
        with
        | Some r ->
          fail
            "resource %s: EDF resources require the cpa backend (no RTC \
             service-curve model for dynamic deadlines)"
            r.res_name
        | None -> Ok ());
    ]
    @ List.map (fun k () -> check_task k) t.tasks
    @ List.map (fun f () -> check_frame f) t.frames
  in
  List.fold_left
    (fun acc check -> match acc with Ok () -> check () | e -> e)
    (Ok ()) all_checks
