module Interval = Timebase.Interval
module Busy_window = Scheduling.Busy_window

type comparison_row = {
  name : string;
  baseline : Interval.t option;
  improved : Interval.t option;
  reduction_pct : float option;
}

let print_outcomes ppf (result : Engine.result) =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (o : Engine.element_outcome) ->
      Format.fprintf ppf "%-12s on %-8s R = %a@ " o.element o.resource
        Busy_window.pp_outcome o.outcome)
    result.outcomes;
  Format.fprintf ppf "converged: %b after %d iteration(s)" result.converged
    result.iterations;
  (match result.status with
  | Engine.Converged | Engine.Overloaded -> ()
  | Engine.Degraded d ->
    Format.fprintf ppf
      "@ DEGRADED at iteration %d (%s): %d bound(s) widened to unbounded;@ \
       remaining bounds are final, widened elements claim nothing"
      d.Engine.at_iteration
      (Guard.Error.to_string d.Engine.reason)
      (List.length d.Engine.widened));
  Format.fprintf ppf "@]@."

let print_effort ppf (result : Engine.result) =
  let s = result.Engine.stats in
  let c = s.Engine.curve in
  let b = s.Engine.busy in
  Format.fprintf ppf "@[<v>Analysis effort:@ ";
  Format.fprintf ppf "  iterations            %d@ " result.Engine.iterations;
  Format.fprintf ppf "  resources analysed    %d@ " s.Engine.resources_analysed;
  Format.fprintf ppf "  resources reused      %d@ " s.Engine.resources_reused;
  Format.fprintf ppf "  streams invalidated   %d@ "
    s.Engine.streams_invalidated;
  Format.fprintf ppf "  curve closure evals   %d  (memo hits %d)@ "
    c.Event_model.Curve.closure_evals c.Event_model.Curve.memo_hits;
  Format.fprintf ppf "  curve periodic evals  %d@ "
    c.Event_model.Curve.periodic_evals;
  Format.fprintf ppf "  curve batch sweeps    %d  (%d probes)@ "
    c.Event_model.Curve.batch_evals c.Event_model.Curve.batch_probe_count;
  Format.fprintf ppf "  curve searches        %d  (%d probe steps)@ "
    c.Event_model.Curve.searches c.Event_model.Curve.search_steps;
  Format.fprintf ppf "  curve spill probes    %d@ "
    c.Event_model.Curve.spill_probes;
  Format.fprintf ppf
    "  busy windows          %d  (%d fixpoint steps, %d activations)@ "
    b.Busy_window.busy_windows b.Busy_window.window_iterations
    b.Busy_window.activations;
  Format.fprintf ppf "  demand kernel sweeps  %d  (%d curve probes)@ "
    b.Busy_window.demand_evals b.Busy_window.demand_probes;
  Format.fprintf ppf "@]"

let print_convergence ppf (result : Engine.result) =
  Format.fprintf ppf "@[<v>%4s %6s %8s %9s %9s %7s %12s@ " "iter" "dirty"
    "changed" "residual" "analysed" "reused" "invalidated";
  List.iter
    (fun (s : Engine.iteration_stat) ->
      Format.fprintf ppf "%4d %6d %8d %9d %9d %7d %12d@ " s.Engine.iteration
        s.Engine.dirty s.Engine.changed s.Engine.residual s.Engine.analysed
        s.Engine.reused s.Engine.invalidated)
    result.Engine.iteration_stats;
  Format.fprintf ppf "converged: %b after %d iteration(s)" result.converged
    result.iterations;
  (match result.status with
  | Engine.Converged | Engine.Overloaded -> ()
  | Engine.Degraded _ ->
    Format.fprintf ppf " [%s]" (Engine.status_name result.status));
  Format.fprintf ppf "@]"

(* Distribution view of the same data [print_convergence] tabulates: the
   per-iteration residuals folded through an [Obs.Hist], so a long
   convergence tail reads as a histogram instead of a hundred rows.
   Built from the recorded stats — needs no histogram enable flag. *)
let print_residual_hist ppf (result : Engine.result) =
  let h = Obs.Hist.make () in
  List.iter
    (fun (s : Engine.iteration_stat) -> Obs.Hist.record h s.Engine.residual)
    result.Engine.iteration_stats;
  Format.fprintf ppf "@[<v>Residual distribution (%d iterations):@ %a@]"
    (List.length result.Engine.iteration_stats)
    Obs.Hist.pp h

let print_convergence_csv ppf ~mode (result : Engine.result) =
  List.iter
    (fun (s : Engine.iteration_stat) ->
      Format.fprintf ppf "%s,%d,%d,%d,%d,%d,%d,%d@."
        (Engine.mode_name mode) s.Engine.iteration s.Engine.dirty
        s.Engine.changed s.Engine.residual s.Engine.analysed s.Engine.reused
        s.Engine.invalidated)
    result.Engine.iteration_stats

let compare_results ~baseline ~improved ~names =
  let row name =
    let base = Engine.response baseline name in
    let better = Engine.response improved name in
    let reduction_pct =
      match base, better with
      | Some b, Some i when Interval.hi b > 0 ->
        Some
          (100.0
          *. float_of_int (Interval.hi b - Interval.hi i)
          /. float_of_int (Interval.hi b))
      | _ -> None
    in
    { name; baseline = base; improved = better; reduction_pct }
  in
  List.map row names

let pp_interval_opt ppf = function
  | Some i -> Interval.pp ppf i
  | None -> Format.pp_print_string ppf "unbounded"

let pp_comparison ppf rows =
  Format.fprintf ppf "@[<v>%-10s %14s %14s %10s@ " "element" "R+ baseline"
    "R+ improved" "red.";
  List.iter
    (fun r ->
      let reduction =
        match r.reduction_pct with
        | Some pct -> Printf.sprintf "%.1f%%" pct
        | None -> "-"
      in
      Format.fprintf ppf "%-10s %14s %14s %10s@ " r.name
        (Format.asprintf "%a" pp_interval_opt r.baseline)
        (Format.asprintf "%a" pp_interval_opt r.improved)
        reduction)
    rows;
  Format.fprintf ppf "@]"

let demand_rate stream cet_hi =
  (* events per time from the arrival curve tail, times the worst case *)
  let window = 100_000 in
  let mid = window / 2 in
  let count dt =
    match Event_model.Stream.eta_plus stream dt with
    | Timebase.Count.Fin n -> n
    | Timebase.Count.Inf -> max_int / 4
  in
  float_of_int ((count window - count mid) * cet_hi) /. float_of_int mid

let utilizations (result : Engine.result) =
  let spec = result.Engine.spec in
  let of_task (k : Spec.task) =
    demand_rate (result.Engine.resolve k.activation) (Interval.hi k.cet)
  in
  let of_frame (f : Spec.frame) =
    demand_rate
      (Hem.Model.outer (result.Engine.pre_bus_hierarchy f.frame_name))
      (Interval.hi f.tx_time)
  in
  List.map
    (fun (r : Spec.resource) ->
      let tasks =
        List.filter (fun (k : Spec.task) -> k.resource = r.res_name)
          spec.Spec.tasks
      in
      let frames =
        List.filter (fun (f : Spec.frame) -> f.bus = r.res_name)
          spec.Spec.frames
      in
      let total =
        List.fold_left (fun acc k -> acc +. of_task k) 0.0 tasks
        +. List.fold_left (fun acc f -> acc +. of_frame f) 0.0 frames
      in
      r.res_name, 100.0 *. total)
    spec.Spec.resources

let signal_data_age (result : Engine.result) ~frame ~signal =
  let hierarchy = result.Engine.pre_bus_hierarchy frame in
  (* raise Not_found early for unknown signals, even when unbounded *)
  ignore (Hem.Model.find_inner hierarchy signal);
  match Engine.response result frame with
  | None -> None
  | Some response ->
    Some (Comstack.Latency.data_age ~hierarchy ~response ~signal)

let path_latency result names =
  let rec total acc = function
    | [] -> Some acc
    | name :: rest -> begin
      match Engine.response result name with
      | Some r -> total (Interval.add acc r) rest
      | None -> None
    end
  in
  total (Interval.make ~lo:0 ~hi:0) names
