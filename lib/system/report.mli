(** Result presentation and cross-mode comparison helpers. *)

type comparison_row = {
  name : string;
  baseline : Timebase.Interval.t option;  (** e.g. flat-mode response *)
  improved : Timebase.Interval.t option;  (** e.g. hierarchical-mode response *)
  reduction_pct : float option;
      (** worst-case response-time reduction in percent, as in the last
          column of the paper's Table 3 *)
}

val print_outcomes : Format.formatter -> Engine.result -> unit
(** One line per analysed element: resource, response interval or
    divergence reason. *)

val print_effort : Format.formatter -> Engine.result -> unit
(** Analysis-effort counters of one run: iterations, resource reuse,
    curve and busy-window work — the scoped {!Engine.stats} of the
    result, so concurrent analyses do not bleed into each other. *)

val print_convergence : Format.formatter -> Engine.result -> unit
(** Per-iteration convergence table ({!Engine.iteration_stat}): dirty and
    changed element counts, the response-bound residual, and incremental
    reuse figures, one row per global iteration. *)

val print_residual_hist : Format.formatter -> Engine.result -> unit
(** The same residuals as an [Obs.Hist] distribution — a long
    convergence tail summarised as log-bucket rows with p50/p90/p99
    instead of one table row per iteration. *)

val print_convergence_csv :
  Format.formatter -> mode:Engine.mode -> Engine.result -> unit
(** The convergence table as headerless CSV rows
    [mode,iteration,dirty,changed,residual,analysed,reused,invalidated] —
    deterministic analysis data only, so the output is byte-stable
    across runs. *)

val compare_results :
  baseline:Engine.result -> improved:Engine.result -> names:string list ->
  comparison_row list
(** Pairs the response times of the named elements in two analysis
    results and computes the worst-case reduction. *)

val pp_comparison : Format.formatter -> comparison_row list -> unit

val path_latency : Engine.result -> string list -> Timebase.Interval.t option
(** Sum of the response intervals of the named elements: a conservative
    end-to-end latency along a functional path.  [None] if any element is
    unbounded. *)

val utilizations : Engine.result -> (string * float) list
(** Long-run load of every resource, in percent: the demand rates of its
    tasks and frames (activation event rate times worst-case execution /
    transmission time), estimated from the final activation curves.  A
    value near or above 100 explains non-convergence. *)

val signal_data_age :
  Engine.result -> frame:string -> signal:string -> Timebase.Time.t option
(** Worst-case write-to-delivery age of a COM signal in the analysed
    system: the register sampling wait (pending signals may wait a full
    frame gap) plus the frame's bus response (see
    {!Comstack.Latency.data_age}).  [None] when the frame's response is
    unbounded.
    @raise Not_found for unknown frame or signal names. *)
