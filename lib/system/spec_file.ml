module Interval = Timebase.Interval
module Stream = Event_model.Stream

type source_desc =
  | Periodic of int
  | Periodic_jitter of {
      period : int;
      jitter : int;
      d_min : int;
    }
  | Sporadic of int
  | Burst of {
      period : int;
      burst : int;
      d_min : int;
    }

type source = {
  source_name : string;
  desc : source_desc;
}

type t = {
  sources : source list;
  resources : Spec.resource list;
  tasks : Spec.task list;
  frames : Spec.frame list;
  default_propagation : Event_model.Propagation.mode;
}

(* ------------------------------------------------------------------ *)
(* S-expressions *)

type sexp =
  | Atom of string
  | List of sexp list

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let tokenize text =
  let tokens = ref [] in
  let buffer = Buffer.create 16 in
  let flush_atom () =
    if Buffer.length buffer > 0 then begin
      tokens := `Atom (Buffer.contents buffer) :: !tokens;
      Buffer.clear buffer
    end
  in
  let in_comment = ref false in
  String.iter
    (fun c ->
      if !in_comment then begin
        if c = '\n' then in_comment := false
      end
      else
        match c with
        | ';' ->
          flush_atom ();
          in_comment := true
        | '(' ->
          flush_atom ();
          tokens := `Lparen :: !tokens
        | ')' ->
          flush_atom ();
          tokens := `Rparen :: !tokens
        | ' ' | '\t' | '\n' | '\r' -> flush_atom ()
        | c -> Buffer.add_char buffer c)
    text;
  flush_atom ();
  List.rev !tokens

let parse_sexp text =
  let rec parse_list acc = function
    | `Rparen :: rest -> List (List.rev acc), rest
    | tokens ->
      let item, rest = parse_one tokens in
      parse_list (item :: acc) rest
  and parse_one = function
    | [] -> fail "unexpected end of input"
    | `Atom a :: rest -> Atom a, rest
    | `Lparen :: rest -> parse_list [] rest
    | `Rparen :: _ -> fail "unexpected ')'"
  in
  match parse_one (tokenize text) with
  | sexp, [] -> sexp
  | _, _ :: _ -> fail "trailing input after the system description"

(* ------------------------------------------------------------------ *)
(* sexp -> description *)

let as_atom = function
  | Atom a -> a
  | List _ -> fail "expected an atom"

let as_int sexp =
  let a = as_atom sexp in
  match int_of_string_opt a with
  | Some n -> n
  | None -> fail "expected an integer, got %s" a

let parse_source_desc = function
  | List [ Atom "periodic"; p ] -> Periodic (as_int p)
  | List (Atom "periodic-jitter" :: p :: j :: rest) ->
    let d_min =
      match rest with
      | [] -> 1
      | [ d ] -> as_int d
      | _ :: _ :: _ -> fail "periodic-jitter takes period, jitter [, d-min]"
    in
    Periodic_jitter { period = as_int p; jitter = as_int j; d_min }
  | List [ Atom "sporadic"; d ] -> Sporadic (as_int d)
  | List [ Atom "burst"; p; b; d ] ->
    Burst { period = as_int p; burst = as_int b; d_min = as_int d }
  | _ -> fail "unknown source description"

let parse_mode atom =
  match Event_model.Propagation.mode_of_name atom with
  | Some m -> m
  | None -> fail "unknown propagation mode %s" atom

let parse_scheduler = function
  | "spp" -> Spec.Spp
  | "spnp" -> Spec.Spnp
  | "tdma" -> Spec.Tdma
  | "round-robin" -> Spec.Round_robin
  | "edf" -> Spec.Edf
  | other -> fail "unknown scheduler %s" other

let rec parse_activation = function
  | List [ Atom "source"; name ] -> Spec.From_source (as_atom name)
  | List [ Atom "output"; name ] -> Spec.From_output (as_atom name)
  | List [ Atom "signal"; frame; signal ] ->
    Spec.From_signal { frame = as_atom frame; signal = as_atom signal }
  | List [ Atom "frame"; name ] -> Spec.From_frame (as_atom name)
  | List (Atom "or" :: acts) -> Spec.Or_of (List.map parse_activation acts)
  | List (Atom "and" :: acts) -> Spec.And_of (List.map parse_activation acts)
  | _ -> fail "unknown activation"

let field name fields =
  List.find_map
    (function
      | List (Atom key :: rest) when String.equal key name -> Some rest
      | List _ | Atom _ -> None)
    fields

let required name context fields =
  match field name fields with
  | Some rest -> rest
  | None -> fail "%s: missing (%s ...)" context name

let parse_interval context = function
  | [ lo; hi ] -> Interval.make ~lo:(as_int lo) ~hi:(as_int hi)
  | [ c ] -> Interval.point (as_int c)
  | _ -> fail "%s: expected one or two integers" context

let parse_task name fields =
  let context = "task " ^ name in
  let resource = as_atom (List.nth (required "resource" context fields) 0) in
  let cet = parse_interval context (required "cet" context fields) in
  let priority = as_int (List.nth (required "priority" context fields) 0) in
  let activation =
    match required "activation" context fields with
    | [ act ] -> parse_activation act
    | _ -> fail "%s: activation takes exactly one form" context
  in
  let optional_int key =
    Option.map (fun rest -> as_int (List.nth rest 0)) (field key fields)
  in
  let propagation =
    Option.map
      (fun rest -> parse_mode (as_atom (List.nth rest 0)))
      (field "propagation" fields)
  in
  {
    Spec.task_name = name;
    resource;
    cet;
    priority;
    service = optional_int "service";
    deadline = optional_int "deadline";
    activation;
    propagation;
  }

let parse_signal = function
  | List [ Atom "signal"; name; Atom property; origin ] ->
    let property =
      match property with
      | "triggering" -> Hem.Model.Triggering
      | "pending" -> Hem.Model.Pending
      | other -> fail "unknown signal property %s" other
    in
    {
      Spec.signal_name = as_atom name;
      property;
      origin = parse_activation origin;
    }
  | _ -> fail "expected (signal NAME triggering|pending ORIGIN)"

let parse_frame name fields =
  let context = "frame " ^ name in
  let bus = as_atom (List.nth (required "bus" context fields) 0) in
  let send_type =
    match required "send" context fields with
    | [ Atom "direct" ] -> Comstack.Frame.Direct
    | [ Atom "periodic"; p ] -> Comstack.Frame.Periodic (as_int p)
    | [ Atom "mixed"; p ] -> Comstack.Frame.Mixed (as_int p)
    | _ -> fail "%s: expected (send direct|periodic P|mixed P)" context
  in
  let tx_time = parse_interval context (required "tx" context fields) in
  let priority = as_int (List.nth (required "priority" context fields) 0) in
  let signals =
    List.filter_map
      (function
        | List (Atom "signal" :: _) as s -> Some (parse_signal s)
        | List _ | Atom _ -> None)
      fields
  in
  {
    Spec.frame_name = name;
    bus;
    send_type;
    tx_time;
    frame_priority = priority;
    signals;
  }

let parse_item description = function
  | List [ Atom "source"; name; desc ] ->
    {
      description with
      sources =
        description.sources
        @ [ { source_name = as_atom name; desc = parse_source_desc desc } ];
    }
  | List (Atom "resource" :: name :: Atom scheduler :: options) ->
    let backend =
      match options with
      | [] -> Spec.Cpa
      | [ List [ Atom "backend"; Atom "cpa" ] ] -> Spec.Cpa
      | [ List [ Atom "backend"; Atom "rtc" ] ] -> Spec.Rtc
      | [ List [ Atom "backend"; Atom other ] ] ->
        fail "resource %s: unknown backend %s (expected rtc|cpa)"
          (as_atom name) other
      | _ ->
        fail "resource %s: expected (resource NAME SCHEDULER [(backend \
              rtc|cpa)])"
          (as_atom name)
    in
    {
      description with
      resources =
        description.resources
        @ [ { Spec.res_name = as_atom name;
              scheduler = parse_scheduler scheduler;
              backend } ];
    }
  | List (Atom "task" :: name :: fields) ->
    {
      description with
      tasks = description.tasks @ [ parse_task (as_atom name) fields ];
    }
  | List (Atom "frame" :: name :: fields) ->
    {
      description with
      frames = description.frames @ [ parse_frame (as_atom name) fields ];
    }
  | List [ Atom "propagation"; mode ] ->
    { description with default_propagation = parse_mode (as_atom mode) }
  | List (Atom other :: _) -> fail "unknown section %s" other
  | List _ | Atom _ ->
    fail "expected a (source|resource|task|frame|propagation ...) form"

let parse text =
  match parse_sexp text with
  | Atom _ -> Error "expected (system ...)"
  | List (Atom "system" :: items) -> begin
    try
      Ok
        (List.fold_left parse_item
           { sources = []; resources = []; tasks = []; frames = [];
             default_propagation = Event_model.Propagation.Theta_tau }
           items)
    with
    | Parse_error e -> Error e
    | Invalid_argument e -> Error e
    | Failure e -> Error e  (* e.g. a field with too few operands *)
  end
  | List _ -> Error "expected (system ...)"
  | exception Parse_error e -> Error e

(* ------------------------------------------------------------------ *)
(* description -> sexp text *)

let print_activation buffer =
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  let rec go = function
    | Spec.From_source s -> add "(source %s)" s
    | Spec.From_output t -> add "(output %s)" t
    | Spec.From_signal { frame; signal } -> add "(signal %s %s)" frame signal
    | Spec.From_frame f -> add "(frame %s)" f
    | Spec.Or_of acts ->
      add "(or";
      List.iter
        (fun a ->
          add " ";
          go a)
        acts;
      add ")"
    | Spec.And_of acts ->
      add "(and";
      List.iter
        (fun a ->
          add " ";
          go a)
        acts;
      add ")"
  in
  go

let print description =
  let buffer = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  add "(system\n";
  (match description.default_propagation with
   | Event_model.Propagation.Theta_tau -> ()
   | m ->
     add "  (propagation %s)\n" (Event_model.Propagation.mode_name m));
  List.iter
    (fun s ->
      match s.desc with
      | Periodic p -> add "  (source %s (periodic %d))\n" s.source_name p
      | Periodic_jitter { period; jitter; d_min } ->
        add "  (source %s (periodic-jitter %d %d %d))\n" s.source_name period
          jitter d_min
      | Sporadic d -> add "  (source %s (sporadic %d))\n" s.source_name d
      | Burst { period; burst; d_min } ->
        add "  (source %s (burst %d %d %d))\n" s.source_name period burst d_min)
    description.sources;
  List.iter
    (fun (r : Spec.resource) ->
      let scheduler =
        match r.scheduler with
        | Spec.Spp -> "spp"
        | Spec.Spnp -> "spnp"
        | Spec.Tdma -> "tdma"
        | Spec.Round_robin -> "round-robin"
        | Spec.Edf -> "edf"
      in
      let backend =
        match r.backend with Spec.Cpa -> "" | Spec.Rtc -> " (backend rtc)"
      in
      add "  (resource %s %s%s)\n" r.res_name scheduler backend)
    description.resources;
  List.iter
    (fun (f : Spec.frame) ->
      add "  (frame %s (bus %s) (send %s) (tx %d %d) (priority %d)\n"
        f.frame_name f.bus
        (match f.send_type with
         | Comstack.Frame.Direct -> "direct"
         | Comstack.Frame.Periodic p -> Printf.sprintf "periodic %d" p
         | Comstack.Frame.Mixed p -> Printf.sprintf "mixed %d" p)
        (Interval.lo f.tx_time) (Interval.hi f.tx_time) f.frame_priority;
      List.iter
        (fun (s : Spec.signal_binding) ->
          add "    (signal %s %s " s.signal_name
            (match s.property with
             | Hem.Model.Triggering -> "triggering"
             | Hem.Model.Pending -> "pending");
          print_activation buffer s.origin;
          add ")\n")
        f.signals;
      add "  )\n")
    description.frames;
  List.iter
    (fun (k : Spec.task) ->
      add "  (task %s (resource %s) (cet %d %d) (priority %d)" k.task_name
        k.resource (Interval.lo k.cet) (Interval.hi k.cet) k.priority;
      (match k.service with
       | Some s -> add " (service %d)" s
       | None -> ());
      (match k.deadline with
       | Some d -> add " (deadline %d)" d
       | None -> ());
      (match k.propagation with
       | Some m ->
         add " (propagation %s)" (Event_model.Propagation.mode_name m)
       | None -> ());
      add "\n    (activation ";
      print_activation buffer k.activation;
      add "))\n")
    description.tasks;
  add ")\n";
  Buffer.contents buffer

let stream_of_desc name = function
  | Periodic period -> Stream.periodic ~name ~period
  | Periodic_jitter { period; jitter; d_min } ->
    Stream.periodic_jitter ~name ~period ~jitter ~d_min ()
  | Sporadic d_min -> Stream.sporadic ~name ~d_min
  | Burst { period; burst; d_min } ->
    Stream.periodic_burst ~name ~period ~burst ~d_min

let to_spec description =
  Spec.make
    ~sources:
      (List.map
         (fun s -> s.source_name, stream_of_desc s.source_name s.desc)
         description.sources)
    ~resources:description.resources ~tasks:description.tasks
    ~frames:description.frames
    ~default_propagation:description.default_propagation ()

let equal a b = a = b
