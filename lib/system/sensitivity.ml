module Interval = Timebase.Interval

let schedulable ?mode spec =
  match Engine.analyse ?mode spec with
  | Ok result -> result.Engine.converged
  | Error _ -> false

let scale_cet spec ~task ~percent =
  if percent < 1 then invalid_arg "Sensitivity.scale_cet: percent < 1";
  let found = ref false in
  let scale v = Stdlib.max 1 ((v * percent + 99) / 100) in
  let tasks =
    List.map
      (fun (k : Spec.task) ->
        if String.equal k.task_name task then begin
          found := true;
          let cet =
            Interval.make
              ~lo:(scale (Interval.lo k.cet))
              ~hi:(scale (Interval.hi k.cet))
          in
          { k with cet }
        end
        else k)
      spec.Spec.tasks
  in
  if not !found then raise Not_found;
  { spec with tasks }

type verdict =
  | Margin of int
  | No_margin
  | Non_monotone of {
      lo_feasible : bool;
      hi_feasible : bool;
    }
  | Empty_interval of {
      lo : int;
      hi : int;
    }

let pp_verdict ppf = function
  | Margin x -> Format.fprintf ppf "margin %d" x
  | No_margin -> Format.pp_print_string ppf "no margin"
  | Non_monotone { lo_feasible; hi_feasible } ->
    Format.fprintf ppf "non-monotone feasibility (lo %s, hi %s)"
      (if lo_feasible then "feasible" else "infeasible")
      (if hi_feasible then "feasible" else "infeasible")
  | Empty_interval { lo; hi } ->
    Format.fprintf ppf "empty interval [%d, %d]" lo hi

(* Largest x in [lo, hi] with [good x], for monotone good (a feasible
   prefix, then infeasible).  Both endpoints are probed first so a
   degenerate search — empty interval, infeasible everywhere, or
   feasibility that is not actually monotone — yields a structured
   verdict instead of an inverted or bogus answer. *)
let search_max ~lo ~hi good =
  if lo > hi then Empty_interval { lo; hi }
  else
    let glo = good lo in
    let ghi = if hi = lo then glo else good hi in
    match glo, ghi with
    | false, false -> No_margin
    | false, true -> Non_monotone { lo_feasible = false; hi_feasible = true }
    | true, true -> Margin hi
    | true, false ->
      let rec search lo hi =
        (* invariant: good lo, not (good hi) *)
        if hi - lo <= 1 then lo
        else
          let mid = lo + ((hi - lo) / 2) in
          if good mid then search mid hi else search lo mid
      in
      Margin (search lo hi)

(* Smallest x in [lo, hi] with [good x], for monotone good (an
   infeasible prefix, then feasible). *)
let search_min ~lo ~hi good =
  if lo > hi then Empty_interval { lo; hi }
  else
    let glo = good lo in
    let ghi = if hi = lo then glo else good hi in
    match glo, ghi with
    | false, false -> No_margin
    | true, false -> Non_monotone { lo_feasible = true; hi_feasible = false }
    | true, true -> Margin lo
    | false, true ->
      let rec search lo hi =
        (* invariant: not (good lo), good hi *)
        if hi - lo <= 1 then hi
        else
          let mid = lo + ((hi - lo) / 2) in
          if good mid then search lo mid else search mid hi
      in
      Margin (search lo hi)

let max_cet_scale_verdict ?mode ?(limit_percent = 10_000) spec ~task =
  let good percent = schedulable ?mode (scale_cet spec ~task ~percent) in
  search_max ~lo:100 ~hi:limit_percent good

let max_cet_scale ?mode ?limit_percent spec ~task =
  match max_cet_scale_verdict ?mode ?limit_percent spec ~task with
  | Margin p -> Some p
  | No_margin | Non_monotone _ | Empty_interval _ -> None

let min_source_period_verdict ?mode ~rebuild ~lo ~hi () =
  let good period = schedulable ?mode (rebuild period) in
  search_min ~lo ~hi good

let min_source_period ?mode ~rebuild ~lo ~hi () =
  if lo > hi then invalid_arg "Sensitivity.min_source_period: lo > hi";
  match min_source_period_verdict ?mode ~rebuild ~lo ~hi () with
  | Margin p -> Some p
  | No_margin | Non_monotone _ | Empty_interval _ -> None
