(** Sensitivity analysis on top of the global engine.

    Answers "how much slack does this design have": the largest scaling
    of a task's execution time, or the smallest period of a source, for
    which the system still converges to bounded response times.  Both
    searches exploit that schedulability is monotone in the varied
    parameter and bisect on it. *)

val schedulable : ?mode:Engine.mode -> Spec.t -> bool
(** True iff the analysis converges with bounded responses everywhere. *)

val scale_cet : Spec.t -> task:string -> percent:int -> Spec.t
(** A copy of the system with the named task's execution-time interval
    scaled to [percent]/100 (rounded up, floored at 1).
    @raise Not_found for an unknown task name. *)

(** Structured outcome of a margin search.  [Margin x] is the genuine
    threshold; the other cases are degenerate searches that previously
    produced [None] indistinguishably (or, for inverted intervals, a
    bogus answer): infeasible across the whole interval ([No_margin]),
    feasibility not monotone at the endpoints ([Non_monotone] — the
    bisection invariant would not hold), or an inverted/empty interval
    ([Empty_interval]). *)
type verdict =
  | Margin of int
  | No_margin
  | Non_monotone of {
      lo_feasible : bool;
      hi_feasible : bool;
    }
  | Empty_interval of {
      lo : int;
      hi : int;
    }

val pp_verdict : Format.formatter -> verdict -> unit

val search_max : lo:int -> hi:int -> (int -> bool) -> verdict
(** Largest [x] in [\[lo, hi\]] with [good x], for [good] monotone
    (feasible prefix, then infeasible).  Probes both endpoints first;
    degenerate inputs yield the structured verdicts above instead of
    looping or inverting the interval. *)

val search_min : lo:int -> hi:int -> (int -> bool) -> verdict
(** Smallest [x] in [\[lo, hi\]] with [good x], for [good] monotone
    (infeasible prefix, then feasible). *)

val max_cet_scale_verdict :
  ?mode:Engine.mode -> ?limit_percent:int -> Spec.t -> task:string ->
  verdict

val min_source_period_verdict :
  ?mode:Engine.mode -> rebuild:(int -> Spec.t) -> lo:int -> hi:int ->
  unit -> verdict

val max_cet_scale :
  ?mode:Engine.mode -> ?limit_percent:int -> Spec.t -> task:string ->
  int option
(** [max_cet_scale spec ~task] is the largest percentage (searched up to
    [limit_percent], default 10_000) such that scaling the task's
    execution time to it keeps the system schedulable; [None] if the
    system is not schedulable even at the task's current size (100 %). *)

val min_source_period :
  ?mode:Engine.mode -> rebuild:(int -> Spec.t) -> lo:int -> hi:int ->
  unit -> int option
(** [min_source_period ~rebuild ~lo ~hi ()] is the smallest period in
    [\[lo, hi\]] for which [rebuild period] is schedulable, assuming
    schedulability is monotone in the period; [None] if even [hi]
    overloads. *)
