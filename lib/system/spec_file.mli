(** Textual system descriptions.

    A small S-expression language for complete system specifications, so
    systems can be analysed from files (see [bin/hem_tool.exe analyse
    --file]).  Example:

    {v
    (system
      (source s1 (periodic 250))
      (source s2 (periodic-jitter 450 30))
      (source s3 (sporadic 100))
      (resource can spnp)
      (resource cpu spp)
      (frame f1 (bus can) (send direct) (tx 4 4) (priority 1)
        (signal sig1 triggering (source s1))
        (signal sig3 pending (source s3)))
      (task t1 (resource cpu) (cet 24 24) (priority 1)
        (activation (signal f1 sig1))))
    v}

    Sources are described syntactically (periodic / periodic-jitter /
    sporadic / burst), so a parsed description can be printed back;
    {!to_spec} builds the analysable {!Spec.t}. *)

type source_desc =
  | Periodic of int
  | Periodic_jitter of {
      period : int;
      jitter : int;
      d_min : int;
    }
  | Sporadic of int
  | Burst of {
      period : int;
      burst : int;
      d_min : int;
    }

type source = {
  source_name : string;
  desc : source_desc;
}

type t = {
  sources : source list;
  resources : Spec.resource list;
  tasks : Spec.task list;
  frames : Spec.frame list;
  default_propagation : Event_model.Propagation.mode;
      (** from a top-level [(propagation MODE)] form, default
          [theta_tau]; per-task overrides come from a
          [(propagation MODE)] task field *)
}

val parse : string -> (t, string) result
(** Parses a [(system ...)] description; errors carry a human-readable
    reason. *)

val print : t -> string
(** Renders back to the textual format; [parse (print d) = Ok d]. *)

val to_spec : t -> Spec.t
(** Instantiates the event streams and produces the analysable system. *)

val equal : t -> t -> bool
