(** Declarative system descriptions for the compositional analysis.

    A system is a set of event sources, scheduled resources (CPUs and
    buses), tasks mapped to resources, and communication-layer frames
    mapped to buses.  Activation inputs reference other elements by name;
    the engine resolves them each global iteration. *)

(** Where a task or signal gets its events from. *)
type activation =
  | From_source of string  (** an external event source *)
  | From_output of string  (** the output stream of a task *)
  | From_signal of {
      frame : string;
      signal : string;
    }
      (** the unpacked inner stream of a signal transported by a frame
          (hierarchical mode); in flat modes this degrades to the frame's
          outer output stream — the comparison the paper draws *)
  | From_frame of string  (** the outer (frame-arrival) stream of a frame *)
  | Or_of of activation list  (** OR-activation of several inputs *)
  | And_of of activation list
      (** AND-activation: the task fires when every input delivered an
          event (inputs are queued and consumed jointly) *)

(** Local scheduling policy of a resource. *)
type scheduler =
  | Spp  (** static-priority preemptive (CPUs) *)
  | Spnp  (** static-priority non-preemptive (CAN bus) *)
  | Tdma  (** TDMA; tasks must declare [service] as their slot length *)
  | Round_robin  (** round robin; [service] is the quantum *)
  | Edf  (** earliest deadline first; tasks must declare [deadline] *)

(** Analysis backend used for a resource's local analysis. *)
type backend =
  | Cpa  (** compositional busy-window analysis (the default) *)
  | Rtc
      (** real-time-calculus curves: activations are converted to
          workload arrival curves, the resource model to service curves,
          and outputs converted back to event streams for downstream
          resources.  Not available for [Edf] resources. *)

type resource = {
  res_name : string;
  scheduler : scheduler;
  backend : backend;
}

val resource : ?backend:backend -> name:string -> scheduler -> resource
(** Resource constructor; [backend] defaults to [Cpa]. *)

type task = {
  task_name : string;
  resource : string;
  cet : Timebase.Interval.t;
  priority : int;  (** smaller = higher *)
  service : int option;  (** TDMA slot length / round-robin quantum *)
  deadline : int option;  (** relative deadline, required on EDF resources *)
  activation : activation;
  propagation : Event_model.Propagation.mode option;
      (** per-task output-propagation override; [None] = spec default *)
}

(** A signal packed into a frame; the stream carrying the signal's write
    events is resolved from [origin]. *)
type signal_binding = {
  signal_name : string;
  property : Hem.Model.signal_kind;
  origin : activation;
}

type frame = {
  frame_name : string;
  bus : string;  (** resource the frame is transmitted on (Spnp) *)
  send_type : Comstack.Frame.send_type;
  tx_time : Timebase.Interval.t;
  frame_priority : int;
  signals : signal_binding list;
}

type t = {
  sources : (string * Event_model.Stream.t) list;
  resources : resource list;
  tasks : task list;
  frames : frame list;
  default_propagation : Event_model.Propagation.mode;
      (** output-propagation method for tasks without an override
          (default [Theta_tau], the paper's exact recursion) *)
}

val task :
  name:string ->
  resource:string ->
  cet:Timebase.Interval.t ->
  priority:int ->
  ?service:int ->
  ?deadline:int ->
  ?propagation:Event_model.Propagation.mode ->
  activation:activation ->
  unit ->
  task

val signal :
  name:string ->
  ?property:Hem.Model.signal_kind ->
  origin:activation ->
  unit ->
  signal_binding
(** [property] defaults to [Triggering]. *)

val frame :
  name:string ->
  bus:string ->
  send_type:Comstack.Frame.send_type ->
  tx_time:Timebase.Interval.t ->
  priority:int ->
  signals:signal_binding list ->
  unit ->
  frame

val make :
  sources:(string * Event_model.Stream.t) list ->
  resources:resource list ->
  tasks:task list ->
  ?frames:frame list ->
  ?default_propagation:Event_model.Propagation.mode ->
  unit ->
  t

val task_propagation : t -> task -> Event_model.Propagation.mode
(** Effective propagation mode of a task: its override if any, else the
    spec default. *)

val with_propagation :
  ?task:string -> Event_model.Propagation.mode -> t -> t
(** [with_propagation mode t] sets the spec-wide default propagation
    mode; [with_propagation ~task mode t] sets a per-task override
    (unknown task names are ignored — validation catches dangling
    references elsewhere). *)

val canonical : t -> string
(** A canonical textual rendering of the system: element lists (and the
    signals of each frame) are sorted by name, and the opaque source
    streams are replaced by a behavioural fingerprint — a prefix of both
    distance functions plus deep probes that expose periodic tails.  Two
    specifications that differ only in element order render identically;
    any parameter edit (period, jitter, execution time, priority, layout,
    signal property, activation wiring) changes the rendering.

    Evaluating the fingerprint forces a prefix of the source streams'
    memoized curves, so like any curve evaluation it must happen in the
    domain that owns the spec (see [Event_model.Curve]). *)

val digest : t -> string
(** [digest t] is the hex digest of {!canonical} — the content address
    used by the exploration result cache: identical variants produced by
    different sweep axes collide on it and are analysed once. *)

val digest_with : Buffer.t -> t -> string
(** [digest_with scratch t] is {!digest}[ t], rendering the canonical
    form into [scratch] (cleared first) instead of a fresh buffer.
    Batch callers — the exploration driver digests one spec per sweep
    item — keep a per-domain scratch buffer and amortise the buffer
    growth across the whole batch.  The digest value is identical to
    {!digest}'s. *)

val validate : t -> (unit, string) result
(** Structural checks: unique element names, resolvable references,
    resources of frames are buses with an SPNP scheduler, TDMA /
    round-robin tasks declare a service parameter, EDF tasks declare a
    deadline. *)
