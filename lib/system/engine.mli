(** Global compositional system analysis (SymTA/S-style iteration).

    The engine alternates local scheduling analysis of every resource with
    output event-model propagation until the response times of all tasks
    and frames reach a fixed point, starting from the optimistic
    assumption of instantaneous processing (response [\[0:0\]]) so the
    iteration converges from below.

    In [Hierarchical] mode, frames carry hierarchical event models: the
    bus is analysed on the outer stream, the inner update function adapts
    the embedded signal streams, and receivers are activated by the
    unpacked per-signal streams.  The two flat modes reproduce the
    baseline the paper compares against: every receiver of a frame is
    activated by the frame's (outer) output stream — as an exact curve
    ([Flat_stream]) or fitted to a standard event model ([Flat_sem], what
    plain SymTA/S would use). *)

type mode =
  | Hierarchical
  | Flat_stream
  | Flat_sem

val mode_name : mode -> string
(** ["hierarchical"], ["flat_stream"] or ["flat_sem"] — used for scope
    and span naming and by the CLI. *)

type element_outcome = {
  element : string;  (** task or frame name *)
  resource : string;
  outcome : Scheduling.Busy_window.outcome;
}

type stats = {
  resources_analysed : int;
      (** local analyses actually executed across all iterations *)
  resources_reused : int;
      (** local analyses skipped because no dependency changed *)
  streams_invalidated : int;
      (** memoized derived streams dropped by dirty propagation *)
  curve : Event_model.Curve.stats;  (** curve work during this analysis *)
  busy : Scheduling.Busy_window.counters;
      (** busy-window work during this analysis *)
}

type iteration_stat = {
  iteration : int;  (** 1-based global iteration number *)
  dirty : int;
      (** elements whose response changed in the previous iteration *)
  changed : int;  (** elements whose response changed in this one *)
  residual : int;
      (** largest response-bound movement this iteration: max over
          changed elements of [max |Δlo| |Δhi|]; [0] at the fixed point *)
  analysed : int;  (** resources re-analysed this iteration *)
  reused : int;  (** resources served from the iteration cache *)
  invalidated : int;  (** memoized streams dropped this iteration *)
}

type widened = {
  w_element : string;  (** task or frame whose bound was given up *)
  w_resource : string;
  last_estimate : Timebase.Interval.t;
      (** the last (unsound, converging-from-below) iterate — diagnostic
          only, never a valid bound *)
}

type degradation = {
  reason : Guard.Error.t;
      (** why the run stopped: [Cancelled], [Deadline_exceeded],
          [Budget_exhausted] or [Diverged] *)
  at_iteration : int;  (** the global iteration that was cut short *)
  widened : widened list;
      (** elements whose bounds were widened to [Unbounded], tagged with
          their resource, in outcome order *)
}

(** How a result should be trusted.  [Converged] results are exact fixed
    points.  [Overloaded] results contain elements that are genuinely
    unbounded (busy periods diverge).  [Degraded] results were stopped
    early; see {!degradation}.  The degradation contract: every outcome
    still [Bounded] in a degraded result is identical to what the fully
    converged analysis would produce (nothing upstream of it can still
    move), and every outcome the interrupted iteration could still have
    changed is widened to [Unbounded] — a degraded result never claims a
    bound it cannot guarantee. *)
type status =
  | Converged
  | Overloaded
  | Degraded of degradation

val status_name : status -> string
(** ["converged"], ["overloaded"] or ["degraded(<reason>)"]. *)

type result = {
  mode : mode;
  spec : Spec.t;  (** the analysed system *)
  converged : bool;  (** [status = Converged] *)
  status : status;
  iterations : int;  (** completed global iterations *)
  outcomes : element_outcome list;
  stats : stats;
  iteration_stats : iteration_stat list;
      (** per-iteration convergence telemetry, in iteration order; always
          populated (cheap to collect), independent of tracing *)
  resolve : Spec.activation -> Event_model.Stream.t;
      (** resolves an activation against the final fixed point *)
  hierarchy : string -> Hem.Model.t;
      (** post-bus hierarchical model of a frame (after the inner
          update); raises [Not_found] for unknown frames *)
  pre_bus_hierarchy : string -> Hem.Model.t;
      (** frame hierarchy as constructed by the COM layer, before bus
          transmission *)
}

val degradation : result -> degradation option
(** [Some] exactly when [status] is [Degraded]. *)

val analyse :
  ?mode:mode ->
  ?incremental:bool ->
  ?max_iterations:int ->
  ?window_limit:int ->
  ?q_limit:int ->
  ?selfcheck:(Event_model.Stream.t -> unit) ->
  ?guard:Guard.t ->
  Spec.t ->
  (result, Guard.Error.t) Stdlib.result
(** Runs the global iteration ([max_iterations] defaults to 64).  Returns
    [Error] for invalid specifications ([Invalid_spec]) or cyclic stream
    dependencies ([Cycle], unsupported).  An overloaded element yields an
    [Unbounded] outcome and a result with [status = Overloaded].

    With [guard] (default: the ambient {!Guard.ambient} token), the
    engine checks the token at every global iteration head, and the
    busy-window loops underneath {!Guard.tick} it once per activation
    and fixpoint step — the unit work budgets are denominated in.  When
    the token trips (cancellation, deadline, budget) or the iteration
    cap is hit before the fixed point, the engine returns [Ok] with
    [status = Degraded]: the outcomes of the last completed iteration,
    with every element the fixed point could still move widened to
    [Unbounded] (see {!status} for the soundness contract).  Guard
    checkpoints cost two loads and a branch when no token is installed.

    With [incremental] (the default), derived streams and per-resource
    outcomes persist across iterations together with the set of response
    times they were derived from; an iteration re-derives only what is
    downstream of responses that actually changed in the previous one.
    Reused results are bit-identical to what a recomputation would
    produce, so outcomes, convergence and iteration counts match
    [~incremental:false] (the original engine: every iteration starts
    from scratch) exactly.

    With [selfcheck], the given audit hook runs on every stream the
    engine resolves — sources, task outputs, frame outer streams and
    unpacked signal streams — each time it is consulted, i.e. at least
    once per global iteration per propagation edge.  The verification
    layer ([Verify.Stream.audit]) plugs its invariant sanitizer in here;
    the engine itself attaches no semantics to the hook.  Without
    [selfcheck] the hot path is unchanged (a single [match] per
    resolution).

    Observability: when a {!Obs.Sink} is installed the analysis emits an
    ["engine.analyse"] span enclosing one ["engine.iteration"] span per
    global iteration, whose end attributes carry the same fields as
    {!iteration_stat}.  All curve and busy-window metric bumps are
    charged to a fresh scope named ["engine:<mode>"]; [stats] reads that
    scope, so interleaved analyses no longer contaminate each other's
    effort numbers. *)

val response : result -> string -> Timebase.Interval.t option
(** Response-time interval of a task or frame in the result, if bounded.
    @raise Not_found for unknown element names. *)

(** {1 Warm sessions}

    A warm session keeps the engine's resolution state — the response
    table, the memoized derived streams with their dependency sets, and
    the per-resource outcome cache — alive between analyses, so a
    follow-up query that edits a few elements pays only for what is
    downstream of them.  This is the serving layer's unit of state: one
    session per loaded system, updated in place per request.

    Domain locality: the cached streams carry unsynchronised curve memo
    tables, so a [warm] value must only ever be used from one domain at
    a time (the serving layer pins each session to a worker). *)

type warm

val warm :
  ?mode:mode ->
  ?max_iterations:int ->
  ?window_limit:int ->
  ?q_limit:int ->
  ?selfcheck:(Event_model.Stream.t -> unit) ->
  ?guard:Guard.t ->
  Spec.t ->
  (warm * result, Guard.Error.t) Stdlib.result
(** Cold analysis that keeps its resolution context.  Equivalent to
    {!analyse} (always incremental) plus the session handle. *)

val warm_update :
  ?guard:Guard.t ->
  warm ->
  spec:Spec.t ->
  stale:string list ->
  (result, Guard.Error.t) Stdlib.result
(** Re-analyses [spec] against the session's cached state.  [stale]
    must name every task/frame whose parameters or (transitive) inputs
    the new spec changes relative to the session's current one —
    compute it with {!affected} over [Explore.Space.touched] seeds, on
    {b both} the old and new specs, and union.  Stale elements are
    invalidated by key (their memo entries do not record a dependency on
    themselves), resources hosting them are re-analysed, their responses
    restart from [\[0:0\]] (the fixed point is approached from below),
    and the first iteration's dirty set is the stale set — everything
    else is served from cache, bit-identical to a from-scratch run.
    With [stale = \[\]] and an unchanged spec this is a read-back: every
    resource reports as reused and the result repeats the fixed point.

    If a previous run of this session did not converge (degraded,
    overloaded, or errored), the cached state is not a valid baseline;
    the next update resets it and runs from scratch.

    The [resolve]/[hierarchy] accessors of a returned {!result} read the
    session's live caches: they are valid until the next
    [warm_update]. *)

val warm_spec : warm -> Spec.t
(** The spec of the last update (the session's current system). *)

val warm_mode : warm -> mode

val warm_poisoned : warm -> bool
(** [true] when the cached state is not a converged baseline and the
    next {!warm_update} will rebuild from scratch. *)

val affected : Spec.t -> sources:string list -> elements:string list -> string list
(** Transitive impact closure of editing the given sources and elements
    in [spec], sorted: every element downstream of a named source or
    element through activation streams and packed signals, closed under
    same-resource coupling (a local analysis re-runs whole resources, so
    one stale element perturbs the interference of all co-hosted ones).
    The named [elements] are included in the output; names absent from
    [spec] are carried through but propagate nothing. *)

val delta_outcomes :
  before:element_outcome list ->
  after:element_outcome list ->
  element_outcome list
(** The outcomes of [after] that are new or differ from their namesake
    in [before] — what a serving client needs to see after an edit.
    Elements only present in [before] (e.g. frames removed by a repack)
    are dropped; the caller reports removals separately if needed. *)
