module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Sem = Event_model.Sem
module Curve = Event_model.Curve
module Combine = Event_model.Combine
module Task_op = Event_model.Task_op
module Busy_window = Scheduling.Busy_window
module Rt_task = Scheduling.Rt_task
module S = Set.Make (String)

let log_src = Logs.Src.create "cpa.engine" ~doc:"global analysis iteration"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode =
  | Hierarchical
  | Flat_stream
  | Flat_sem

let mode_name = function
  | Hierarchical -> "hierarchical"
  | Flat_stream -> "flat_stream"
  | Flat_sem -> "flat_sem"

type element_outcome = {
  element : string;
  resource : string;
  outcome : Busy_window.outcome;
}

type stats = {
  resources_analysed : int;
  resources_reused : int;
  streams_invalidated : int;
  curve : Curve.stats;
  busy : Busy_window.counters;
}

type iteration_stat = {
  iteration : int;
  dirty : int;
  changed : int;
  residual : int;
  analysed : int;
  reused : int;
  invalidated : int;
}

type widened = {
  w_element : string;
  w_resource : string;
  last_estimate : Interval.t;
}

type degradation = {
  reason : Guard.Error.t;
  at_iteration : int;
  widened : widened list;
}

type status =
  | Converged
  | Overloaded
  | Degraded of degradation

let status_name = function
  | Converged -> "converged"
  | Overloaded -> "overloaded"
  | Degraded d ->
    Printf.sprintf "degraded(%s)" (Guard.Error.to_string d.reason)

type result = {
  mode : mode;
  spec : Spec.t;
  converged : bool;
  status : status;
  iterations : int;
  outcomes : element_outcome list;
  stats : stats;
  iteration_stats : iteration_stat list;
  resolve : Spec.activation -> Stream.t;
  hierarchy : string -> Hem.Model.t;
  pre_bus_hierarchy : string -> Hem.Model.t;
}

let degradation result =
  match result.status with Degraded d -> Some d | _ -> None

let c_degraded = Obs.Metrics.counter "engine.degraded"
let h_iteration = Obs.Hist.hist "engine.iteration_ns"

(* Persistent resolution context.  Derived streams are memoized together
   with the set of response names they (transitively) depend on: a task
   output depends on that task's response plus whatever its activation
   depends on; a post-bus frame hierarchy depends on the frame's response
   plus the dependencies of every packed signal.  Between global
   iterations only the entries downstream of responses that actually
   changed are invalidated (pycpa-style dependency-driven propagation);
   everything else — including the memoized curve prefixes inside the
   cached streams — survives. *)
type ctx = {
  spec : Spec.t;
  mode : mode;
  response_of : string -> Interval.t;
  task_outputs : (string, Stream.t * S.t) Hashtbl.t;
  frames_pre : (string, Hem.Model.t * S.t) Hashtbl.t;
  frames_post : (string, Hem.Model.t * S.t) Hashtbl.t;
  profiles : (string, Event_model.Propagation.profile) Hashtbl.t;
      (* per-element busy-window completion profiles from the last local
         analysis; consulted by busy_window / optimal output propagation *)
  mutable profile_changed : S.t;
      (* elements whose profile moved in the current iteration — folded
         into the changed set so downstream outputs are re-derived even
         when the response interval itself is stable *)
  rtc_outputs : (string, Stream.t * string) Hashtbl.t;
      (* converted output streams of tasks on RTC-backend resources,
         with a behavioural fingerprint for change detection; these
         replace the response-based output propagation for such tasks *)
  mutable rtc_changed : S.t;
      (* tasks whose converted output stream moved in the current
         iteration — folded into the changed set like [profile_changed] *)
  in_progress : (string, unit) Hashtbl.t;
  mutable dep_acc : S.t;  (* responses consulted by the ongoing resolution *)
  selfcheck : (Stream.t -> unit) option;
      (* audit hook applied to every resolved stream; [None] costs one
         match per resolution and nothing else *)
}

let make_ctx ?selfcheck spec mode response_of =
  {
    spec;
    mode;
    response_of;
    task_outputs = Hashtbl.create 16;
    frames_pre = Hashtbl.create 8;
    frames_post = Hashtbl.create 8;
    profiles = Hashtbl.create 16;
    profile_changed = S.empty;
    rtc_outputs = Hashtbl.create 8;
    rtc_changed = S.empty;
    in_progress = Hashtbl.create 16;
    dep_acc = S.empty;
    selfcheck;
  }

(* Completion profiles are only collected (and compared across
   iterations) when some task's effective propagation mode consumes
   them; the default Theta_tau configuration takes the exact same local
   analysis calls as before. *)
let mode_needs_profile = function
  | Event_model.Propagation.Busy_window | Event_model.Propagation.Optimal ->
    true
  | Event_model.Propagation.Theta_tau | Event_model.Propagation.Jitter
  | Event_model.Propagation.Jitter_offset
  | Event_model.Propagation.Jitter_bmin -> false

let uses_profiles (spec : Spec.t) =
  mode_needs_profile spec.Spec.default_propagation
  || List.exists
       (fun (k : Spec.task) ->
         match k.Spec.propagation with
         | Some m -> mode_needs_profile m
         | None -> false)
       spec.Spec.tasks

(* Memoization that records, per entry, the responses it was derived
   from; hits replay the recorded dependency set into the accumulator so
   enclosing computations inherit it. *)
let memo_deps ctx table key ~extra compute =
  match Hashtbl.find_opt table key with
  | Some (v, deps) ->
    ctx.dep_acc <- S.union ctx.dep_acc deps;
    v
  | None ->
    let saved = ctx.dep_acc in
    ctx.dep_acc <- S.empty;
    let v = compute () in
    let deps = S.union extra ctx.dep_acc in
    Hashtbl.add table key (v, deps);
    ctx.dep_acc <- S.union saved deps;
    v

let guarded ctx key compute =
  if Hashtbl.mem ctx.in_progress key then
    raise (Guard.Error.Error (Guard.Error.Cycle { element = key }));
  Hashtbl.add ctx.in_progress key ();
  (* exception-safe: an interrupt mid-resolution must not leave the key
     behind, or later resolutions through [result.resolve] would report
     a spurious cycle *)
  Fun.protect
    ~finally:(fun () -> Hashtbl.remove ctx.in_progress key)
    compute

let find_task spec name =
  List.find (fun (k : Spec.task) -> String.equal k.task_name name) spec.Spec.tasks

let find_frame spec name =
  List.find
    (fun (f : Spec.frame) -> String.equal f.frame_name name)
    spec.Spec.frames

(* Memo misses only: hits never reach here, so the span count is the
   number of stream derivations actually performed. *)
let stream_span kind name compute =
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "engine.stream"
      ~attrs:[ ("stream", Obs.Event.Str (kind ^ ":" ^ name)) ]
      compute
  else compute ()

let rec resolve ctx (act : Spec.activation) =
  let stream =
    match act with
    | Spec.From_source s -> List.assoc s ctx.spec.Spec.sources
    | Spec.From_output name -> task_output ctx name
    | Spec.From_frame name -> Hem.Model.outer (frame_post ctx name)
    | Spec.From_signal { frame; signal } -> begin
      let post = frame_post ctx frame in
      match ctx.mode with
      | Hierarchical -> Hem.Deconstruct.unpack_label post signal
      | Flat_stream -> Hem.Model.outer post
      | Flat_sem ->
        let outer = Hem.Model.outer post in
        Sem.to_stream ~name:(Stream.name outer ^ "~sem") (Sem.fit outer)
    end
    | Spec.Or_of acts -> Combine.or_combine (List.map (resolve ctx) acts)
    | Spec.And_of acts -> Combine.and_combine (List.map (resolve ctx) acts)
  in
  (match ctx.selfcheck with
   | None -> ()
   | Some audit -> audit stream);
  stream

and task_output ctx name =
  memo_deps ctx ctx.task_outputs name ~extra:(S.singleton name) (fun () ->
    guarded ctx ("task:" ^ name) (fun () ->
      stream_span "task" name (fun () ->
        let k = find_task ctx.spec name in
        (* tasks on RTC-backend resources emit the stream converted back
           from the GPC output curve; the table is consulted only while
           the mapping actually is RTC (a warm-session backend edit must
           not serve a stale conversion), and until the resource's first
           local analysis fills it the response-based propagation below
           seeds the fixpoint exactly like a CPA task *)
        let rtc_backed =
          match
            List.find_opt
              (fun (r : Spec.resource) ->
                String.equal r.Spec.res_name k.Spec.resource)
              ctx.spec.Spec.resources
          with
          | Some { Spec.backend = Spec.Rtc; _ } -> true
          | Some _ | None -> false
        in
        match
          if rtc_backed then Hashtbl.find_opt ctx.rtc_outputs name else None
        with
        | Some (stream, _) -> stream
        | None ->
        let input = resolve ctx k.Spec.activation in
        let response = ctx.response_of name in
        match Spec.task_propagation ctx.spec k with
        | Event_model.Propagation.Theta_tau ->
          Task_op.output ~name:(name ^ ".out") ~response input
        | mode ->
          Event_model.Propagation.derive ~name:(name ^ ".out") ~mode
            ~response
            ~bmin:(Interval.lo k.Spec.cet)
            ?profile:(Hashtbl.find_opt ctx.profiles name)
            input)))

and frame_pre ctx name =
  memo_deps ctx ctx.frames_pre name ~extra:S.empty (fun () ->
    guarded ctx ("frame:" ^ name) (fun () ->
      stream_span "frame_pre" name (fun () ->
        let f = find_frame ctx.spec name in
        let signals =
          List.map
            (fun (s : Spec.signal_binding) ->
              {
                Comstack.Signal.name = s.signal_name;
                property = s.property;
                stream = resolve ctx s.origin;
              })
            f.signals
        in
        Comstack.Frame.hierarchy
          (Comstack.Frame.make ~name:f.frame_name ~send_type:f.send_type
             ~signals ~tx_time:f.tx_time ~priority:f.frame_priority))))

and frame_post ctx name =
  memo_deps ctx ctx.frames_post name ~extra:(S.singleton name) (fun () ->
    stream_span "frame_post" name (fun () ->
      let pre = frame_pre ctx name in
      Hem.Inner_update.apply_response ~response:(ctx.response_of name) pre))

(* Store freshly collected completion profiles in the context and mark
   the elements whose profile moved (including appearing or vanishing):
   a changed profile must invalidate the element's memoized output even
   when its response interval is stable. *)
let record_profiles ctx results =
  List.map
    (fun ((rt : Rt_task.t), outcome, profile) ->
      let name = rt.Rt_task.name in
      (match Hashtbl.find_opt ctx.profiles name, profile with
       | None, None -> ()
       | Some p, Some p' when Event_model.Propagation.profile_equal p p' -> ()
       | _, Some p' ->
         Hashtbl.replace ctx.profiles name p';
         ctx.profile_changed <- S.add name ctx.profile_changed
       | Some _, None ->
         Hashtbl.remove ctx.profiles name;
         ctx.profile_changed <- S.add name ctx.profile_changed);
      rt, outcome)
    results

(* Converted output streams are opaque closures, so movement across
   iterations is detected behaviourally, like [Spec]'s source
   fingerprints: a prefix of both distance functions plus deep probes
   that expose the periodic tail. *)
let stream_fingerprint s =
  let buffer = Buffer.create 256 in
  let probe f n =
    Buffer.add_string buffer (Timebase.Time.to_string (f s n));
    Buffer.add_char buffer ' '
  in
  for n = 2 to 34 do
    probe Stream.delta_min n
  done;
  List.iter (probe Stream.delta_min) [ 64; 101; 257 ];
  for n = 2 to 34 do
    probe Stream.delta_plus n
  done;
  List.iter (probe Stream.delta_plus) [ 64; 101; 257 ];
  Buffer.contents buffer

let record_rtc_output ctx name output =
  match output with
  | None ->
    if Hashtbl.mem ctx.rtc_outputs name then begin
      Hashtbl.remove ctx.rtc_outputs name;
      ctx.rtc_changed <- S.add name ctx.rtc_changed
    end
  | Some stream ->
    let fp = stream_fingerprint stream in
    (match Hashtbl.find_opt ctx.rtc_outputs name with
     | Some (_, old) when String.equal old fp -> ()
     | Some _ | None ->
       Hashtbl.replace ctx.rtc_outputs name (stream, fp);
       ctx.rtc_changed <- S.add name ctx.rtc_changed)

(* Local analysis of one resource under the streams of [ctx].  Returns
   the outcomes together with the set of responses the resource's
   activation streams depend on: the resource needs re-analysis only when
   one of those changes. *)
let analyse_resource ?window_limit ?q_limit ctx (res : Spec.resource) =
  let saved = ctx.dep_acc in
  ctx.dep_acc <- S.empty;
  let tasks =
    List.filter
      (fun (k : Spec.task) -> String.equal k.resource res.res_name)
      ctx.spec.Spec.tasks
  in
  let frames =
    List.filter
      (fun (f : Spec.frame) -> String.equal f.bus res.res_name)
      ctx.spec.Spec.frames
  in
  let rt_of_task (k : Spec.task) =
    Rt_task.make ~name:k.task_name ~cet:k.cet ~priority:k.priority
      ~activation:(resolve ctx k.activation)
  in
  let rt_frames =
    List.map
      (fun (f : Spec.frame) ->
        Rt_task.make ~name:f.frame_name ~cet:f.tx_time
          ~priority:f.frame_priority
          ~activation:(Hem.Model.outer (frame_pre ctx f.frame_name)))
      frames
  in
  let rt_tasks = List.map rt_of_task tasks @ rt_frames in
  let profiled = uses_profiles ctx.spec in
  let outcomes =
    match res.backend with
    | Spec.Rtc ->
      let policy =
        match res.scheduler with
        | Spec.Spp -> Hybrid.Local.Spp
        | Spec.Spnp -> Hybrid.Local.Spnp
        | Spec.Tdma -> Hybrid.Local.Tdma
        | Spec.Round_robin -> Hybrid.Local.Round_robin
        | Spec.Edf ->
          (* Spec.validate rejects this combination up front *)
          invalid_arg
            (Printf.sprintf "resource %s: EDF has no RTC backend"
               res.res_name)
      in
      let services =
        List.map (fun (k : Spec.task) -> k.Spec.service) tasks
        @ List.map (fun (_ : Spec.frame) -> None) frames
      in
      let items =
        List.map2
          (fun service (rt : Rt_task.t) ->
            {
              Hybrid.Local.name = rt.Rt_task.name;
              cet = rt.Rt_task.cet;
              priority = rt.Rt_task.priority;
              service;
              activation = rt.Rt_task.activation;
            })
          services rt_tasks
      in
      let results = Hybrid.Local.analyse ~policy items in
      (* only task outputs feed downstream activations through
         [task_output]; frame outputs flow through the frame response
         as in the CPA path *)
      List.iter2
        (fun (rt : Rt_task.t) (r : Hybrid.Local.outcome) ->
          if
            List.exists
              (fun (k : Spec.task) ->
                String.equal k.Spec.task_name rt.Rt_task.name)
              tasks
          then record_rtc_output ctx rt.Rt_task.name r.Hybrid.Local.output)
        rt_tasks results;
      List.map2
        (fun rt (r : Hybrid.Local.outcome) -> rt, r.Hybrid.Local.response)
        rt_tasks results
    | Spec.Cpa ->
    match res.scheduler with
    | Spec.Spp ->
      if profiled then
        record_profiles ctx
          (Scheduling.Spp.analyse_profiled ?window_limit ?q_limit rt_tasks)
      else Scheduling.Spp.analyse ?window_limit ?q_limit rt_tasks
    | Spec.Spnp ->
      if profiled then
        record_profiles ctx
          (Scheduling.Spnp.analyse_profiled ?window_limit ?q_limit rt_tasks)
      else Scheduling.Spnp.analyse ?window_limit ?q_limit rt_tasks
    | Spec.Tdma ->
      let slot_of (k : Spec.task) rt =
        { Scheduling.Tdma.task = rt; length = Option.get k.service }
      in
      let slots = List.map2 slot_of tasks (List.map rt_of_task tasks) in
      Scheduling.Tdma.analyse ?window_limit ?q_limit slots
    | Spec.Round_robin ->
      let share_of (k : Spec.task) rt =
        { Scheduling.Round_robin.task = rt; quantum = Option.get k.service }
      in
      let shares = List.map2 share_of tasks (List.map rt_of_task tasks) in
      Scheduling.Round_robin.analyse ?window_limit ?q_limit shares
    | Spec.Edf ->
      let edf_of (k : Spec.task) rt =
        { Scheduling.Edf.task = rt; deadline = Option.get k.deadline }
      in
      let edf_tasks = List.map2 edf_of tasks (List.map rt_of_task tasks) in
      Scheduling.Edf.analyse ?window_limit edf_tasks
  in
  let deps = ctx.dep_acc in
  ctx.dep_acc <- saved;
  ( List.map
      (fun ((rt : Rt_task.t), outcome) ->
        { element = rt.Rt_task.name; resource = res.res_name; outcome })
      outcomes,
    deps )

let touches dirty deps = S.exists (fun d -> S.mem d dirty) deps

(* Drop every memo entry derived from a response in [dirty]; returns how
   many entries were invalidated. *)
let drop_dirty table dirty =
  let stale =
    Hashtbl.fold
      (fun key ((_ : 'a), deps) acc ->
        if touches dirty deps then key :: acc else acc)
      table []
  in
  List.iter (Hashtbl.remove table) stale;
  List.length stale

(* The fixpoint driver, shared by cold [analyse] and warm sessions.  All
   mutable state — the response table, the memoization context, the
   per-resource outcome cache — is owned by the caller: a cold analysis
   makes it fresh, a warm session keeps it across calls and seeds
   [initial_dirty] with the elements an edit invalidated, paying only for
   what is downstream of them. *)
let run_fixpoint ~mode ~incremental ~max_iterations ?window_limit ?q_limit
    ~guard ~responses ~ctx ~resource_cache ~initial_dirty () =
  begin
    let spec = ctx.spec in
    let response_of = ctx.response_of in
    (* Every curve and busy-window counter bump during this analysis is
       charged to [scope] (curves created here carry the attachment, so
       even post-convergence evaluations through [result.resolve] keep
       accruing to the right analysis). *)
    let scope = Obs.Metrics.scope ("engine:" ^ mode_name mode) in
    let zero = Interval.make ~lo:0 ~hi:0 in
    let analysed = ref 0
    and reused = ref 0
    and invalidated = ref 0 in
    (* [dirty] is the set of elements whose response changed in the
       previous iteration; only streams and resources downstream of it
       are re-derived.  The non-incremental path reproduces the original
       engine exactly: every iteration starts from empty memo tables and
       re-analyses every resource. *)
    let run_iteration ~dirty =
      if not incremental then begin
        Hashtbl.reset ctx.task_outputs;
        Hashtbl.reset ctx.frames_pre;
        Hashtbl.reset ctx.frames_post;
        Hashtbl.reset resource_cache
      end
      else
        invalidated :=
          !invalidated
          + drop_dirty ctx.task_outputs dirty
          + drop_dirty ctx.frames_pre dirty
          + drop_dirty ctx.frames_post dirty;
      List.concat_map
        (fun (res : Spec.resource) ->
          match Hashtbl.find_opt resource_cache res.res_name with
          | Some (outcomes, deps) when not (touches dirty deps) ->
            incr reused;
            outcomes
          | Some _ | None ->
            let outcomes, deps =
              if Obs.Trace.enabled () then
                Obs.Trace.with_span "engine.resource"
                  ~attrs:[ ("resource", Obs.Event.Str res.res_name) ]
                  (fun () -> analyse_resource ?window_limit ?q_limit ctx res)
              else analyse_resource ?window_limit ?q_limit ctx res
            in
            Hashtbl.replace resource_cache res.res_name (outcomes, deps);
            incr analysed;
            outcomes)
        spec.Spec.resources
    in
    (* One global iteration: local analyses plus the convergence check.
       Returns the outcomes, whether every element is bounded, the set of
       elements whose response changed, and the residual — the largest
       response-bound movement (max of |Δlo|, |Δhi| over changed
       elements), i.e. the distance still to the fixed point. *)
    let step i dirty =
      let outcomes = run_iteration ~dirty in
      Log.debug (fun m ->
        m "iteration %d: %a" i
          (Format.pp_print_list ~pp_sep:Format.pp_print_space
             (fun ppf o ->
               Format.fprintf ppf "%s=%a" o.element Busy_window.pp_outcome
                 o.outcome))
          outcomes);
      let all_bounded =
        List.for_all
          (fun o ->
            match o.outcome with
            | Busy_window.Bounded _ -> true
            | Busy_window.Unbounded _ -> false)
          outcomes
      in
      let changed = ref S.empty in
      let residual = ref 0 in
      List.iter
        (fun o ->
          match o.outcome with
          | Busy_window.Bounded r ->
            let prev = response_of o.element in
            if not (Interval.equal prev r) then begin
              changed := S.add o.element !changed;
              residual :=
                Stdlib.max !residual
                  (Stdlib.max
                     (abs (Interval.lo r - Interval.lo prev))
                     (abs (Interval.hi r - Interval.hi prev)));
              Hashtbl.replace responses o.element r
            end
          | Busy_window.Unbounded _ -> ())
        outcomes;
      (* profile and converted-output movements re-dirty their element
         even when the response interval is unchanged — the next
         iteration re-derives the memoized output stream from the new
         completion data / conversion *)
      let changed =
        S.union !changed (S.union ctx.profile_changed ctx.rtc_changed)
      in
      ctx.profile_changed <- S.empty;
      ctx.rtc_changed <- S.empty;
      outcomes, all_bounded, changed, !residual
    in
    (* Snapshot of the last fully completed iteration — outcomes, the
       set of elements whose response it changed, and its number — used
       to build a degraded result when the run is interrupted mid-flight.
       [acc_stats] accumulates telemetry the same way so the interrupt
       path keeps what was measured. *)
    let last_complete : (element_outcome list * S.t * int) option ref =
      ref None
    in
    let acc_stats = ref [] in
    (* Widening for degraded exits.  The iteration converges from below
       (responses start at [0:0]), so un-settled bounds are optimistic,
       not conservative.  Anything the fixed point could still move —
       the last iteration's changed set, closed transitively over the
       recorded resource dependency sets — is widened to [Unbounded]:
       claiming nothing is the only sound claim.  Elements outside the
       closure can never change in any further iteration (nothing
       upstream of them moves), so their bounds are already final and
       are kept. *)
    let degrade ~reason ~at_iteration =
      Obs.Metrics.incr c_degraded;
      if Obs.Trace.enabled () then
        Obs.Trace.instant "engine.degraded"
          ~attrs:[ ("reason", Obs.Event.Str (Guard.Error.to_string reason)) ];
      let outcomes, seed, completed =
        match !last_complete with
        | Some (outcomes, changed, i) -> outcomes, changed, i
        | None ->
          (* interrupted before one full iteration: synthesize the
             element list; every bound is unknown *)
          let outs =
            List.concat_map
              (fun (res : Spec.resource) ->
                List.filter_map
                  (fun (k : Spec.task) ->
                    if String.equal k.resource res.res_name then
                      Some
                        {
                          element = k.task_name;
                          resource = res.res_name;
                          outcome = Busy_window.Bounded zero;
                        }
                    else None)
                  spec.Spec.tasks
                @ List.filter_map
                    (fun (f : Spec.frame) ->
                      if String.equal f.bus res.res_name then
                        Some
                          {
                            element = f.frame_name;
                            resource = res.res_name;
                            outcome = Busy_window.Bounded zero;
                          }
                      else None)
                    spec.Spec.frames)
              spec.Spec.resources
          in
          let all =
            List.fold_left (fun s o -> S.add o.element s) S.empty outs
          in
          outs, all, 0
      in
      let tainted = ref seed in
      let grew = ref true in
      while !grew do
        grew := false;
        List.iter
          (fun (res : Spec.resource) ->
            let taint_element name =
              if not (S.mem name !tainted) then begin
                tainted := S.add name !tainted;
                grew := true
              end
            in
            match Hashtbl.find_opt resource_cache res.res_name with
            | Some (outs, deps) ->
              if touches !tainted deps then
                List.iter (fun o -> taint_element o.element) outs
            | None ->
              (* never analysed: dependencies unknown, assume tainted *)
              List.iter
                (fun o ->
                  if String.equal o.resource res.res_name then
                    taint_element o.element)
                outcomes)
          spec.Spec.resources
      done;
      let widened = ref [] in
      let outcomes' =
        List.map
          (fun o ->
            match o.outcome with
            | Busy_window.Bounded r when S.mem o.element !tainted ->
              widened :=
                {
                  w_element = o.element;
                  w_resource = o.resource;
                  last_estimate = r;
                }
                :: !widened;
              {
                o with
                outcome =
                  Busy_window.Unbounded
                    ("degraded: " ^ Guard.Error.to_string reason);
              }
            | _ -> o)
          outcomes
      in
      let degr = { reason; at_iteration; widened = List.rev !widened } in
      outcomes', completed, Degraded degr
    in
    let rec iterate i dirty =
      if Guard.Inject.armed () then
        Guard.Inject.fire ("engine.iteration:" ^ string_of_int i);
      Guard.check guard;
      let a0 = !analysed and r0 = !reused and v0 = !invalidated in
      let hist_on = Obs.Hist.enabled () in
      let t0 = if hist_on then Obs.Trace.now_us () else 0.0 in
      let outcomes, all_bounded, changed, residual =
        if Obs.Trace.enabled () then begin
          let post = ref (S.empty, 0) in
          Obs.Trace.with_span "engine.iteration"
            ~attrs:
              [
                "iteration", Obs.Event.Int i;
                "dirty", Obs.Event.Int (S.cardinal dirty);
              ]
            ~end_attrs:(fun () ->
              let changed, residual = !post in
              [
                "changed", Obs.Event.Int (S.cardinal changed);
                "residual", Obs.Event.Int residual;
                "analysed", Obs.Event.Int (!analysed - a0);
                "reused", Obs.Event.Int (!reused - r0);
                "invalidated", Obs.Event.Int (!invalidated - v0);
              ])
            (fun () ->
              let (_, _, changed, residual) as r = step i dirty in
              post := (changed, residual);
              r)
        end
        else step i dirty
      in
      if hist_on then
        Obs.Hist.record h_iteration
          (int_of_float ((Obs.Trace.now_us () -. t0) *. 1e3));
      Obs.Trace.counter "engine.residual" residual;
      Obs.Trace.counter "engine.dirty" (S.cardinal changed);
      let stat =
        {
          iteration = i;
          dirty = S.cardinal dirty;
          changed = S.cardinal changed;
          residual;
          analysed = !analysed - a0;
          reused = !reused - r0;
          invalidated = !invalidated - v0;
        }
      in
      acc_stats := stat :: !acc_stats;
      last_complete := Some (outcomes, changed, i);
      if not all_bounded then outcomes, i, Overloaded
      else if S.is_empty changed then outcomes, i, Converged
      else if i >= max_iterations then
        degrade ~reason:(Guard.Error.Diverged { iterations = i })
          ~at_iteration:i
      else iterate (i + 1) changed
    in
    let run () =
      Obs.Metrics.in_scope scope (fun () ->
        Guard.with_ambient guard (fun () -> iterate 1 initial_dirty))
    in
    let traced () =
      if Obs.Trace.enabled () then
        Obs.Trace.with_span "engine.analyse"
          ~attrs:
            [
              "mode", Obs.Event.Str (mode_name mode);
              "incremental", Obs.Event.Bool incremental;
              "resources", Obs.Event.Int (List.length spec.Spec.resources);
              "tasks", Obs.Event.Int (List.length spec.Spec.tasks);
              "frames", Obs.Event.Int (List.length spec.Spec.frames);
            ]
          run
      else run ()
    in
    let finish (outcomes, iterations, status) =
      Guard.observe_completion guard;
      let stats =
        {
          resources_analysed = !analysed;
          resources_reused = !reused;
          streams_invalidated = !invalidated;
          curve = Curve.stats_in scope;
          busy = Busy_window.counters_in scope;
        }
      in
      Ok
        {
          mode;
          spec;
          converged = (match status with Converged -> true | _ -> false);
          status;
          iterations;
          outcomes;
          stats;
          iteration_stats = List.rev !acc_stats;
          resolve = resolve ctx;
          hierarchy = frame_post ctx;
          pre_bus_hierarchy = frame_pre ctx;
        }
    in
    match traced () with
    | outcome -> finish outcome
    | exception Guard.Error.Error r when Guard.Error.is_interrupt r ->
      (* a guard checkpoint tripped: degrade from the last completed
         iteration instead of failing *)
      let at_iteration =
        match !last_complete with Some (_, _, i) -> i + 1 | None -> 1
      in
      finish (degrade ~reason:r ~at_iteration)
    | exception Guard.Error.Error r -> Error r
  end

let fresh_state ?selfcheck spec mode =
  let zero = Interval.make ~lo:0 ~hi:0 in
  let responses : (string, Interval.t) Hashtbl.t = Hashtbl.create 16 in
  let response_of name =
    Option.value (Hashtbl.find_opt responses name) ~default:zero
  in
  let ctx = make_ctx ?selfcheck spec mode response_of in
  (* last local analysis per resource, with its response dependencies *)
  let resource_cache : (string, element_outcome list * S.t) Hashtbl.t =
    Hashtbl.create 8
  in
  responses, ctx, resource_cache

let analyse ?(mode = Hierarchical) ?(incremental = true) ?(max_iterations = 64)
    ?window_limit ?q_limit ?selfcheck ?guard spec =
  let guard = match guard with Some g -> g | None -> Guard.ambient () in
  match Spec.validate spec with
  | Error e -> Error (Guard.Error.Invalid_spec { reason = e })
  | Ok () ->
    let responses, ctx, resource_cache = fresh_state ?selfcheck spec mode in
    run_fixpoint ~mode ~incremental ~max_iterations ?window_limit ?q_limit
      ~guard ~responses ~ctx ~resource_cache ~initial_dirty:S.empty ()

(* ------------------------------------------------------------------ *)
(* Warm sessions *)

type warm = {
  warm_mode : mode;
  warm_max_iterations : int;
  warm_window_limit : int option;
  warm_q_limit : int option;
  warm_responses : (string, Interval.t) Hashtbl.t;
  mutable warm_ctx : ctx;
  warm_resource_cache : (string, element_outcome list * S.t) Hashtbl.t;
  mutable warm_poisoned : bool;
      (* a previous run stopped short of the fixed point (degraded or
         overloaded): the cached state is not a converged baseline, so
         the next update starts from scratch *)
}

let warm_spec w = w.warm_ctx.spec
let warm_mode w = w.warm_mode
let warm_poisoned w = w.warm_poisoned

let warm ?(mode = Hierarchical) ?(max_iterations = 64) ?window_limit ?q_limit
    ?selfcheck ?guard spec =
  let guard = match guard with Some g -> g | None -> Guard.ambient () in
  match Spec.validate spec with
  | Error e -> Error (Guard.Error.Invalid_spec { reason = e })
  | Ok () -> begin
    let responses, ctx, resource_cache = fresh_state ?selfcheck spec mode in
    match
      run_fixpoint ~mode ~incremental:true ~max_iterations ?window_limit
        ?q_limit ~guard ~responses ~ctx ~resource_cache
        ~initial_dirty:S.empty ()
    with
    | Error e -> Error e
    | Ok result ->
      Ok
        ( {
            warm_mode = mode;
            warm_max_iterations = max_iterations;
            warm_window_limit = window_limit;
            warm_q_limit = q_limit;
            warm_responses = responses;
            warm_ctx = ctx;
            warm_resource_cache = resource_cache;
            warm_poisoned =
              (match result.status with Converged -> false | _ -> true);
          },
          result )
  end

(* Resources hosting any element of [stale] in [spec].  A resource's
   cached outcome records only its *activation* dependencies — a change
   to one of its own tasks' parameters (cet, priority) is invisible to
   that dependency set, so the host entry must be dropped explicitly. *)
let hosting_resources spec stale =
  let acc =
    List.fold_left
      (fun acc (k : Spec.task) ->
        if S.mem k.task_name stale then S.add k.resource acc else acc)
      S.empty spec.Spec.tasks
  in
  List.fold_left
    (fun acc (f : Spec.frame) ->
      if S.mem f.frame_name stale then S.add f.bus acc else acc)
    acc spec.Spec.frames

let warm_update ?guard w ~spec ~stale =
  let guard = match guard with Some g -> g | None -> Guard.ambient () in
  match Spec.validate spec with
  | Error e -> Error (Guard.Error.Invalid_spec { reason = e })
  | Ok () ->
    let ctx0 = w.warm_ctx in
    let initial_dirty =
      if w.warm_poisoned then begin
        (* no converged baseline to be incremental against *)
        Hashtbl.reset ctx0.task_outputs;
        Hashtbl.reset ctx0.frames_pre;
        Hashtbl.reset ctx0.frames_post;
        Hashtbl.reset ctx0.profiles;
        ctx0.profile_changed <- S.empty;
        Hashtbl.reset w.warm_resource_cache;
        Hashtbl.reset w.warm_responses;
        S.empty
      end
      else begin
        let stale_set = S.of_list stale in
        (* Stale elements are invalidated by KEY, not only through
           [drop_dirty]: a memo entry does not depend on its own
           response (a frame's pre-bus hierarchy depends on none at
           all), so dependency-driven dropping alone would keep serving
           streams built from the old parameters. *)
        S.iter
          (fun k ->
            Hashtbl.remove ctx0.task_outputs k;
            Hashtbl.remove ctx0.frames_pre k;
            Hashtbl.remove ctx0.frames_post k;
            Hashtbl.remove ctx0.profiles k)
          stale_set;
        S.iter
          (Hashtbl.remove w.warm_resource_cache)
          (S.union
             (hosting_resources ctx0.spec stale_set)
             (hosting_resources spec stale_set));
        (* converge from below: a stale element's old response may
           overshoot its new fixed point *)
        S.iter (Hashtbl.remove w.warm_responses) stale_set;
        stale_set
      end
    in
    let ctx =
      { ctx0 with spec; in_progress = Hashtbl.create 16; dep_acc = S.empty }
    in
    w.warm_ctx <- ctx;
    let result =
      run_fixpoint ~mode:w.warm_mode ~incremental:true
        ~max_iterations:w.warm_max_iterations
        ?window_limit:w.warm_window_limit ?q_limit:w.warm_q_limit ~guard
        ~responses:w.warm_responses ~ctx ~resource_cache:w.warm_resource_cache
        ~initial_dirty ()
    in
    (match result with
     | Ok r ->
       w.warm_poisoned <- (match r.status with Converged -> false | _ -> true)
     | Error _ -> w.warm_poisoned <- true);
    result

(* ------------------------------------------------------------------ *)
(* Static impact closure *)

let activation_refs act =
  let rec go ((srcs, els) as acc) = function
    | Spec.From_source s -> S.add s srcs, els
    | Spec.From_output t -> srcs, S.add t els
    | Spec.From_frame f -> srcs, S.add f els
    | Spec.From_signal { frame; _ } -> srcs, S.add frame els
    | Spec.Or_of acts | Spec.And_of acts -> List.fold_left go acc acts
  in
  go (S.empty, S.empty) act

let affected spec ~sources ~elements =
  let src_set = S.of_list sources in
  (* element -> the sources and elements its activation streams read *)
  let edges =
    List.map
      (fun (k : Spec.task) -> k.task_name, activation_refs k.activation)
      spec.Spec.tasks
    @ List.map
        (fun (f : Spec.frame) ->
          ( f.frame_name,
            List.fold_left
              (fun (srcs, els) (s : Spec.signal_binding) ->
                let s', e' = activation_refs s.origin in
                S.union srcs s', S.union els e')
              (S.empty, S.empty) f.signals ))
        spec.Spec.frames
  in
  let members =
    List.map
      (fun (res : Spec.resource) ->
        List.filter_map
          (fun (k : Spec.task) ->
            if String.equal k.resource res.res_name then Some k.task_name
            else None)
          spec.Spec.tasks
        @ List.filter_map
            (fun (f : Spec.frame) ->
              if String.equal f.bus res.res_name then Some f.frame_name
              else None)
            spec.Spec.frames)
      spec.Spec.resources
  in
  let stale = ref (S.of_list elements) in
  let grew = ref true in
  let mark name =
    if not (S.mem name !stale) then begin
      stale := S.add name !stale;
      grew := true
    end
  in
  while !grew do
    grew := false;
    (* downstream of a stale input *)
    List.iter
      (fun (name, (srcs, els)) ->
        if
          (not (S.mem name !stale))
          && (S.exists (fun s -> S.mem s src_set) srcs
             || S.exists (fun e -> S.mem e !stale) els)
        then mark name)
      edges;
    (* local-analysis coupling: one stale element on a resource changes
       the interference every co-hosted element sees *)
    List.iter
      (fun group ->
        if List.exists (fun m -> S.mem m !stale) group then
          List.iter mark group)
      members
  done;
  S.elements !stale

let outcome_equal a b =
  match a, b with
  | Busy_window.Bounded x, Busy_window.Bounded y -> Interval.equal x y
  | Busy_window.Unbounded x, Busy_window.Unbounded y -> String.equal x y
  | Busy_window.Bounded _, Busy_window.Unbounded _
  | Busy_window.Unbounded _, Busy_window.Bounded _ -> false

let delta_outcomes ~before ~after =
  List.filter
    (fun o ->
      match
        List.find_opt (fun b -> String.equal b.element o.element) before
      with
      | Some b ->
        (not (String.equal b.resource o.resource))
        || not (outcome_equal b.outcome o.outcome)
      | None -> true)
    after

let response result name =
  match
    List.find (fun o -> String.equal o.element name) result.outcomes
  with
  | { outcome = Busy_window.Bounded r; _ } -> Some r
  | { outcome = Busy_window.Unbounded _; _ } -> None
