module Es = Event_model.Stream
module Time = Timebase.Time
module Count = Timebase.Count
module Interval = Timebase.Interval
module Spec = Cpa_system.Spec
module Engine = Cpa_system.Engine
module Busy = Scheduling.Busy_window
module Summary = Explore.Summary
module Trace = Des.Trace
module Port = Des.Port

type check = {
  name : string;
  ok : bool;
  detail : string;
}

let check ~name ok detail = { name; ok; detail }

let pp_check ppf c =
  Format.fprintf ppf "%s %s: %s" (if c.ok then "ok  " else "FAIL") c.name
    c.detail

let forall ~name items probe =
  let failures = List.filter_map probe items in
  match failures with
  | [] -> check ~name true (Printf.sprintf "%d probes" (List.length items))
  | first :: _ ->
    check ~name false
      (Printf.sprintf "%d/%d probes failed; first: %s" (List.length failures)
         (List.length items) first)

type report = {
  label : string;
  checks : check list;
  violations : Violation.t list;
}

let passed r =
  List.for_all (fun c -> c.ok) r.checks && Violation.errors r.violations = []

let pp_report ppf r =
  Format.fprintf ppf "@[<v>== %s ==" r.label;
  List.iter (fun c -> Format.fprintf ppf "@,%a" pp_check c) r.checks;
  List.iter (fun v -> Format.fprintf ppf "@,%a" Violation.pp v) r.violations;
  Format.fprintf ppf "@,%s@]"
    (if passed r then "PASS" else "FAIL")

(* ------------------------------------------------------------------ *)
(* oracle 1: compact curve backend vs naive closure reimplementation *)

(* The naive twins below deliberately avoid [Curve.periodic]: they are
   plain closures over the defining formulas (or the concrete arrival
   pattern), so the compact backend's prefix/tail arithmetic and its
   arithmetic pseudo-inversion are checked against an implementation
   that shares no code with them. *)

let naive_periodic ~period =
  let d n = Time.of_int ((n - 1) * period) in
  Es.make ~name:"naive" ~delta_min:d ~delta_plus:d

let naive_jitter ~period ~jitter ~d_min =
  Es.make ~name:"naive"
    ~delta_min:(fun n ->
      Time.of_int
        (Stdlib.max ((n - 1) * d_min) (((n - 1) * period) - jitter)))
    ~delta_plus:(fun n -> Time.of_int (((n - 1) * period) + jitter))

let naive_burst ~period ~burst ~d_min =
  let position j = ((j / burst) * period) + (j mod burst * d_min) in
  let over_starts n pick =
    let rec scan j acc =
      if j >= burst then acc
      else scan (j + 1) (pick acc (position (j + n - 1) - position j))
    in
    scan 1 (position (n - 1) - position 0)
  in
  Es.make ~name:"naive"
    ~delta_min:(fun n -> Time.of_int (over_starts n Stdlib.min))
    ~delta_plus:(fun n -> Time.of_int (over_starts n Stdlib.max))

let naive_sporadic ~d_min =
  Es.make ~name:"naive"
    ~delta_min:(fun n -> Time.of_int ((n - 1) * d_min))
    ~delta_plus:(fun _ -> Time.Inf)

(* independent linear-scan pseudo-inversions over the naive curves *)
let scan_eta_plus s dt =
  if dt <= 0 then Count.zero
  else begin
    let t = Time.of_int dt in
    let rec scan n =
      if n > 8192 then Count.Inf
      else if Time.(Es.delta_min s n < t) then scan (n + 1)
      else Count.of_int (n - 1)
    in
    scan 1
  end

let scan_eta_minus s dt =
  let t = Time.of_int dt in
  let rec scan n =
    if n > 8192 then Count.Inf
    else if Time.(Es.delta_plus s (n + 2) > t) then Count.of_int n
    else scan (n + 1)
  in
  scan 0

let backend_ns = List.init 65 Fun.id @ [ 100; 1000; 4097 ]

let backend_dts = [ 1; 2; 7; 10; 99; 100; 250; 1000; 2500; 10_000 ]

let backend_pair ~name compact naive =
  [
    forall ~name:(name ^ ":delta") backend_ns (fun n ->
        let mismatch role c nv =
          if Time.equal c nv then None
          else
            Some
              (Printf.sprintf "%s %d: compact %s, naive %s" role n
                 (Time.to_string c) (Time.to_string nv))
        in
        match
          mismatch "delta_min" (Es.delta_min compact n) (Es.delta_min naive n)
        with
        | Some _ as m -> m
        | None ->
          mismatch "delta_plus" (Es.delta_plus compact n)
            (Es.delta_plus naive n));
    forall ~name:(name ^ ":eta") backend_dts (fun dt ->
        let mismatch role c nv =
          if Count.equal c nv then None
          else
            Some
              (Printf.sprintf "%s dt=%d: compact %s, scan %s" role dt
                 (Count.to_string c) (Count.to_string nv))
        in
        match
          mismatch "eta_plus" (Es.eta_plus compact dt) (scan_eta_plus naive dt)
        with
        | Some _ as m -> m
        | None ->
          mismatch "eta_minus" (Es.eta_minus compact dt)
            (scan_eta_minus naive dt));
  ]

let backend_agreement () =
  List.concat
    [
      backend_pair ~name:"periodic(250)"
        (Es.periodic ~name:"c" ~period:250)
        (naive_periodic ~period:250);
      backend_pair ~name:"periodic(7)"
        (Es.periodic ~name:"c" ~period:7)
        (naive_periodic ~period:7);
      backend_pair ~name:"jitter(450,90)"
        (Es.periodic_jitter ~name:"c" ~period:450 ~jitter:90 ())
        (naive_jitter ~period:450 ~jitter:90 ~d_min:1);
      backend_pair ~name:"jitter(1000,3000,40)"
        (Es.periodic_jitter ~name:"c" ~period:1000 ~jitter:3000 ~d_min:40 ())
        (naive_jitter ~period:1000 ~jitter:3000 ~d_min:40);
      backend_pair ~name:"burst(1000,5,10)"
        (Es.periodic_burst ~name:"c" ~period:1000 ~burst:5 ~d_min:10)
        (naive_burst ~period:1000 ~burst:5 ~d_min:10);
      backend_pair ~name:"burst(50,3,1)"
        (Es.periodic_burst ~name:"c" ~period:50 ~burst:3 ~d_min:1)
        (naive_burst ~period:50 ~burst:3 ~d_min:1);
      backend_pair ~name:"sporadic(100)"
        (Es.sporadic ~name:"c" ~d_min:100)
        (naive_sporadic ~d_min:100);
    ]

(* ------------------------------------------------------------------ *)
(* oracle 1b: batched curve sweeps vs the boxed scalar evaluator *)

(* Deliberately unsorted and with duplicates: [eval_batch] makes no
   ordering assumption, and a batched closure evaluation must hit the
   memo for a repeated probe exactly like the scalar path does. *)
let batch_probe_lists =
  [
    [ 1; 2; 3; 5; 8; 13; 21; 34 ];
    [ 64; 2; 63; 2; 100; 1; 17; 4097; 17 ];
    [ 1000; 3; 999; 3; 1; 128 ];
  ]

let packed_of_time = function
  | Time.Fin d -> d
  | Time.Inf -> Event_model.Curve.packed_inf

let batch_agreement_curve ~name curve =
  let module Curve = Event_model.Curve in
  forall ~name batch_probe_lists (fun probes ->
      let arr = Array.of_list probes in
      let batch = Curve.eval_batch curve arr in
      let rec scan i =
        if i >= Array.length arr then None
        else
          let scalar = packed_of_time (Curve.eval curve arr.(i)) in
          if batch.(i) = scalar then scan (i + 1)
          else
            Some
              (Printf.sprintf "n=%d: batch %d, scalar %d" arr.(i) batch.(i)
                 scalar)
      in
      scan 0)

(* Both distance curves of every source stream of the spec: periodic
   compact backends from the standard constructors and closure backends
   from OR/AND combinations all pass through here. *)
let batch_agreement spec =
  List.map
    (fun (name, stream) ->
      batch_agreement_curve
        ~name:(Printf.sprintf "batch[%s]:delta_min" name)
        (Es.delta_min_curve stream))
    spec.Spec.sources
  @ List.map
      (fun (name, stream) ->
        batch_agreement_curve
          ~name:(Printf.sprintf "batch[%s]:delta_plus" name)
          (Es.delta_plus_curve stream))
      spec.Spec.sources

(* ------------------------------------------------------------------ *)
(* oracle 2: incremental engine vs from-scratch fixed point *)

let render_result (r : Engine.result) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "status=%s iterations=%d" (Engine.status_name r.status)
       r.iterations);
  List.iter
    (fun (o : Engine.element_outcome) ->
      Buffer.add_string b
        (Format.asprintf "\n%s@%s %a" o.element o.resource Busy.pp_outcome
           o.outcome))
    r.outcomes;
  Buffer.contents b

let engine_agreement ?(mode = Engine.Hierarchical) spec =
  let name = Printf.sprintf "engine[%s]:incremental=scratch" (Engine.mode_name mode) in
  match
    ( Engine.analyse ~mode ~incremental:true spec,
      Engine.analyse ~mode ~incremental:false spec )
  with
  | Ok inc, Ok scratch ->
    let a = render_result inc and b = render_result scratch in
    if String.equal a b then [ check ~name true "byte-identical outcomes" ]
    else [ check ~name false (Printf.sprintf "incremental:\n%s\nscratch:\n%s" a b) ]
  | Error a, Error b ->
    let a = Guard.Error.to_string a and b = Guard.Error.to_string b in
    [ check ~name (String.equal a b) (Printf.sprintf "both rejected: %s / %s" a b) ]
  | Ok _, Error e ->
    [ check ~name false ("scratch rejected: " ^ Guard.Error.to_string e) ]
  | Error e, Ok _ ->
    [ check ~name false ("incremental rejected: " ^ Guard.Error.to_string e) ]

(* ------------------------------------------------------------------ *)
(* oracle 2b: batched analysis kernels vs scalar legacy paths *)

(* The batched kernels (range sweeps in OR-combination, compact task-op
   construction, demand vectors in the busy-window analyses) are pure
   optimisations: the whole analysis, run with kernels forced off and
   on, must render byte-identical outcomes. *)
let kernel_agreement ?(mode = Engine.Hierarchical) spec =
  let module Kernels = Event_model.Kernels in
  let name =
    Printf.sprintf "engine[%s]:batched=scalar" (Engine.mode_name mode)
  in
  match
    ( Kernels.with_batched (fun () ->
          Engine.analyse ~mode ~incremental:false spec),
      Kernels.with_scalar (fun () ->
          Engine.analyse ~mode ~incremental:false spec) )
  with
  | Ok batched, Ok scalar ->
    let a = render_result batched and b = render_result scalar in
    if String.equal a b then [ check ~name true "byte-identical outcomes" ]
    else
      [ check ~name false (Printf.sprintf "batched:\n%s\nscalar:\n%s" a b) ]
  | Error a, Error b ->
    let a = Guard.Error.to_string a and b = Guard.Error.to_string b in
    [
      check ~name (String.equal a b)
        (Printf.sprintf "both rejected: %s / %s" a b);
    ]
  | Ok _, Error e ->
    [ check ~name false ("scalar rejected: " ^ Guard.Error.to_string e) ]
  | Error e, Ok _ ->
    [ check ~name false ("batched rejected: " ^ Guard.Error.to_string e) ]

(* ------------------------------------------------------------------ *)
(* oracle 3: hierarchical vs flat-SEM baseline *)

let response_map (r : Engine.result) =
  List.map
    (fun (o : Engine.element_outcome) ->
      o.element, Busy.response_interval o.outcome)
    r.outcomes

let hierarchy_tightness (hem : Engine.result) (flat : Engine.result) =
  match hem.Engine.status, flat.Engine.status with
  | Engine.Degraded _, _ | _, Engine.Degraded _ ->
    (* widened bounds carry no tightness claim: a degraded hem result
       may be Unbounded where flat is bounded without any violation *)
    check ~name:"hem<=flat_sem" true "skipped: degraded result"
  | (Engine.Converged | Engine.Overloaded), _ ->
  let flat_map = response_map flat in
  forall ~name:"hem<=flat_sem" (response_map hem) (fun (element, hem_r) ->
      match hem_r, List.assoc_opt element flat_map with
      | _, None -> Some (element ^ " missing from flat result")
      | Some h, Some (Some f) ->
        if Interval.hi h <= Interval.hi f then None
        else
          Some
            (Printf.sprintf "%s: hem %s above flat %s" element
               (Interval.to_string h) (Interval.to_string f))
      | Some _, Some None -> None (* flat unbounded: hem strictly tighter *)
      | None, Some (Some f) ->
        Some
          (Printf.sprintf "%s: hem unbounded but flat bounded at %s" element
             (Interval.to_string f))
      | None, Some None -> None)

(* ------------------------------------------------------------------ *)
(* oracle 3b: degraded results only retain bounds that are final *)

let degradation_soundness ~reference (degraded : Engine.result) =
  let ref_map = response_map reference in
  forall ~name:"degraded:retained-bounds-final" (response_map degraded)
    (fun (element, r) ->
      match r with
      | None -> None (* widened or genuinely unbounded: claims nothing *)
      | Some d -> begin
        match List.assoc_opt element ref_map with
        | None -> Some (element ^ " missing from reference result")
        | Some None ->
          Some
            (Printf.sprintf "%s: degraded claims %s but reference is unbounded"
               element (Interval.to_string d))
        | Some (Some f) ->
          if Interval.equal d f then None
          else
            Some
              (Printf.sprintf "%s: degraded claims %s, converged bound is %s"
                 element (Interval.to_string d) (Interval.to_string f))
      end)

(* ------------------------------------------------------------------ *)
(* oracle 4: analytic bounds dominate simulator measurements *)

let sim_dts = [ 1; 10; 50; 100; 250; 1000; 2500 ]

let simulation_dominance ?(seed = 42) ?(horizon = 200_000) ~generators ~tag
    (result : Engine.result) spec =
  match Des.Simulator.run ~seed ~generators ~horizon spec with
  | Error e -> [ check ~name:(tag ^ ":simulate") false e ]
  | Ok trace ->
    let elements =
      List.map (fun (t : Spec.task) -> t.task_name) spec.Spec.tasks
      @ List.map (fun (f : Spec.frame) -> f.frame_name) spec.Spec.frames
    in
    let bounds = response_map result in
    let responses =
      forall ~name:(tag ^ ":responses") elements (fun element ->
          match List.assoc_opt element bounds with
          | None | Some None -> None (* unbounded: vacuously dominated *)
          | Some (Some bound) ->
            (match Trace.worst_response trace element with
             | Some observed when observed > Interval.hi bound ->
               Some
                 (Printf.sprintf "%s: observed %d above bound %s" element
                    observed (Interval.to_string bound))
             | _ ->
               (match Trace.best_response trace element with
                | Some best when best < Interval.lo bound ->
                  Some
                    (Printf.sprintf "%s: best %d below bound %s" element best
                       (Interval.to_string bound))
                | _ -> None)))
    in
    let sources =
      forall ~name:(tag ^ ":source-eta")
        (List.concat_map
           (fun (name, stream) -> List.map (fun dt -> name, stream, dt) sim_dts)
           spec.Spec.sources)
        (fun (name, stream, dt) ->
          let observed = Trace.observed_eta_plus trace (Port.source name) ~dt in
          let bound = Es.eta_plus stream dt in
          if Count.compare (Count.of_int observed) bound <= 0 then None
          else
            Some
              (Printf.sprintf "%s dt=%d: observed %d above eta+ %s" name dt
                 observed (Count.to_string bound)))
    in
    [ responses; sources ]

(* ------------------------------------------------------------------ *)
(* oracle 5: exploration cache on vs off *)

let render_metrics (m : Summary.metrics) =
  Printf.sprintf "converged=%b degraded=%b worst=%s util=%.4f margin=%.4f iters=%d"
    m.converged m.degraded
    (match m.worst_latency with Some w -> string_of_int w | None -> "unbounded")
    m.max_util_pct m.margin_pct m.iterations

let render_summary (s : Summary.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b s.digest;
  List.iter
    (fun (ms : Summary.mode_summary) ->
      Buffer.add_string b
        (Printf.sprintf "\n%s %s" (Engine.mode_name ms.mode)
           (render_metrics ms.metrics));
      List.iter
        (fun (element, r) ->
          Buffer.add_string b
            (Printf.sprintf "\n  %s=%s" element
               (match r with
                | Some i -> Interval.to_string i
                | None -> "unbounded")))
        ms.responses)
    s.modes;
  Buffer.contents b

let render_summary_result = function
  | Ok s -> render_summary s
  | Error e -> "error: " ^ e

let cache_agreement ?(jobs = 2) ~base variants =
  let report =
    Explore.Driver.run ~jobs (Explore.Driver.items_of_variants ~base variants)
  in
  forall ~name:"explore:cache=direct"
    (List.combine variants report.Explore.Driver.rows)
    (fun ((v : Explore.Space.variant), (row : Explore.Driver.row)) ->
      let spec = Explore.Space.apply_all (base ()) v.edits in
      let digest = Spec.digest spec in
      if not (String.equal digest row.digest) then
        Some
          (Printf.sprintf "%s: digest %s via driver, %s direct" row.label
             row.digest digest)
      else
        let direct = render_summary_result (Summary.evaluate ~digest spec) in
        let cached = render_summary_result row.summary in
        if String.equal direct cached then None
        else
          Some
            (Printf.sprintf "%s: driver summary differs from direct\n%s\n--\n%s"
               row.label cached direct))

(* ------------------------------------------------------------------ *)
(* oracle 6: propagation modes — conservative, ordered, invariant *)

module Prop = Event_model.Propagation

(* Force one propagation mode on the whole system: set the spec-wide
   default and drop any per-task overrides, so the runs compared below
   are pure single-mode analyses. *)
let forced_mode mode spec =
  let spec =
    {
      spec with
      Spec.tasks =
        List.map
          (fun (t : Spec.task) -> { t with Spec.propagation = None })
          spec.Spec.tasks;
    }
  in
  Spec.with_propagation mode spec

(* The mode-invariance claim only holds where the propagation operators
   coincide analytically: jitter-free inputs (so nothing to subtract)
   and point execution/transmission intervals (so outputs stay
   jitter-free through the whole graph).  See the propagation qcheck
   properties for the single-element version of the argument. *)
let pure_periodic_point spec =
  let point iv = Interval.lo iv = Interval.hi iv in
  List.for_all
    (fun (_, s) ->
      List.for_all
        (fun n -> Time.equal (Es.delta_min s n) (Es.delta_plus s n))
        [ 2; 3; 5; 8; 17; 64; 513 ])
    spec.Spec.sources
  && List.for_all (fun (t : Spec.task) -> point t.Spec.cet) spec.Spec.tasks
  && List.for_all
       (fun (f : Spec.frame) -> point f.Spec.tx_time)
       spec.Spec.frames

let degraded (r : Engine.result) =
  match r.Engine.status with
  | Engine.Degraded _ -> true
  | Engine.Converged | Engine.Overloaded -> false

let propagation_dominance ?(seed = 42) ?(horizon = 200_000) ?generators spec
    =
  let runs =
    List.map
      (fun m ->
        ( m,
          Engine.analyse ~mode:Engine.Hierarchical ~incremental:false
            (forced_mode m spec) ))
      Prop.all_modes
  in
  let analysed =
    List.filter_map
      (fun (m, r) -> match r with Ok r -> Some (m, r) | Error _ -> None)
      runs
  in
  let all_analyse =
    forall ~name:"propagation:analyse" runs (fun (m, r) ->
        match r with
        | Ok _ -> None
        | Error e ->
          Some (Prop.mode_name m ^ ": " ^ Guard.Error.to_string e))
  in
  (* optimal is pointwise at least as tight as every single mode *)
  let tightness =
    match List.assoc_opt Prop.Optimal analysed with
    | None -> []
    | Some opt when degraded opt -> []
    | Some opt ->
      let opt_map = response_map opt in
      List.filter_map
        (fun (m, r) ->
          if m = Prop.Optimal || degraded r then None
          else
            Some
              (forall
                 ~name:("propagation:optimal<=" ^ Prop.mode_name m)
                 (response_map r)
                 (fun (element, mode_r) ->
                   match mode_r, List.assoc_opt element opt_map with
                   | _, None ->
                     Some (element ^ " missing from optimal result")
                   | None, Some _ -> None (* mode unbounded: vacuous *)
                   | Some mr, Some (Some o) ->
                     if Interval.hi o <= Interval.hi mr then None
                     else
                       Some
                         (Printf.sprintf "%s: optimal %s above %s %s" element
                            (Interval.to_string o) (Prop.mode_name m)
                            (Interval.to_string mr))
                   | Some mr, Some None ->
                     Some
                       (Printf.sprintf
                          "%s: optimal unbounded but %s bounded at %s" element
                          (Prop.mode_name m) (Interval.to_string mr)))))
        analysed
  in
  (* every mode's bounds dominate one shared simulation of the system
     (the trace is mode-independent — modes only change the analysis) *)
  let conservatism =
    match generators with
    | None -> []
    | Some generators -> begin
      match Des.Simulator.run ~seed ~generators ~horizon spec with
      | Error e -> [ check ~name:"propagation:simulate" false e ]
      | Ok trace ->
        let elements =
          List.map (fun (t : Spec.task) -> t.task_name) spec.Spec.tasks
          @ List.map (fun (f : Spec.frame) -> f.frame_name) spec.Spec.frames
        in
        List.map
          (fun (m, r) ->
            let bounds = response_map r in
            forall
              ~name:("propagation:sim<=" ^ Prop.mode_name m)
              elements
              (fun element ->
                match List.assoc_opt element bounds with
                | None | Some None -> None (* unbounded: vacuously safe *)
                | Some (Some bound) -> begin
                  match Trace.worst_response trace element with
                  | Some observed when observed > Interval.hi bound ->
                    Some
                      (Printf.sprintf "%s: observed %d above bound %s" element
                         observed (Interval.to_string bound))
                  | _ -> begin
                    match Trace.best_response trace element with
                    | Some best when best < Interval.lo bound ->
                      Some
                        (Printf.sprintf "%s: best %d below bound %s" element
                           best (Interval.to_string bound))
                    | _ -> None
                  end
                end))
          analysed
    end
  in
  (* on jitter-free periodic inputs with point intervals the modes are
     one formula: rendered results must be byte-identical *)
  let invariance =
    if not (pure_periodic_point spec) then []
    else
      match analysed with
      | (m0, r0) :: rest
        when r0.Engine.status = Engine.Converged
             && List.for_all (fun (_, r) -> not (degraded r)) rest ->
        let reference = render_result r0 in
        [
          forall ~name:"propagation:pure-periodic-invariant" rest
            (fun (m, r) ->
              if String.equal (render_result r) reference then None
              else
                Some
                  (Printf.sprintf "%s differs from %s:\n%s\n--\n%s"
                     (Prop.mode_name m) (Prop.mode_name m0) (render_result r)
                     reference));
        ]
      | _ -> []
  in
  (all_analyse :: tightness) @ conservatism @ invariance

(* ------------------------------------------------------------------ *)
(* oracle 7: hybrid RTC<->CPA coupling soundness *)

(* Force every resource onto one local-analysis backend.  EDF resources
   stay on [Cpa]: the curve backend has no service model for dynamic
   deadlines and [Spec.validate] rejects the combination. *)
let forced_backend backend spec =
  {
    spec with
    Spec.resources =
      List.map
        (fun (r : Spec.resource) ->
          if r.Spec.scheduler = Spec.Edf then
            { r with Spec.backend = Spec.Cpa }
          else { r with Spec.backend = backend })
        spec.Spec.resources;
  }

let roundtrip_ns = [ 2; 3; 4; 5; 8; 13; 21; 34; 64 ]

(* Round trip every source stream through the conversion boundary:
   stream -> certified workload curves -> stream again, with
   [wcet = bcet] so the demand scaling cancels.  The returned stream
   must be pointwise conservative (delta_min' <= delta_min,
   delta_plus' >= delta_plus) everywhere, and exact on jitter-free
   periodic sources within the sampled horizon.  The converted-back
   stream runs under the {!Stream.wrap} sanitizer, so convention
   violations (non-monotone distances, ordering flips) surface through
   [push] as they are produced. *)
let hybrid_roundtrip ~push spec =
  let horizon = 512 and cost = 3 in
  forall ~name:"hybrid:roundtrip" spec.Spec.sources (fun (name, s) ->
      match Hybrid.Convert.of_stream ~horizon ~wcet:cost ~bcet:cost s with
      | exception Invalid_argument e -> Some (name ^ ": " ^ e)
      | curves ->
        let back =
          Stream.wrap ~on_violation:push
            (Hybrid.Convert.to_stream ~name:(name ^ "~rt") ~wcet:cost
               ~bcet:cost ~upper:curves.Hybrid.Convert.upper
               ~lower:(Some curves.Hybrid.Convert.lower))
        in
        let jitter_free =
          List.for_all
            (fun n -> Time.equal (Es.delta_min s n) (Es.delta_plus s n))
            roundtrip_ns
        in
        let h = Time.of_int horizon in
        let rec scan = function
          | [] -> None
          | n :: rest ->
            let dmin = Es.delta_min s n and dplus = Es.delta_plus s n in
            let dmin' = Es.delta_min back n
            and dplus' = Es.delta_plus back n in
            if Time.(dmin' > dmin) then
              Some
                (Printf.sprintf "%s delta_min %d: round trip %s above %s"
                   name n (Time.to_string dmin') (Time.to_string dmin))
            else if Time.(dplus' < dplus) then
              Some
                (Printf.sprintf "%s delta_plus %d: round trip %s below %s"
                   name n (Time.to_string dplus') (Time.to_string dplus))
            else if
              jitter_free
              && Time.(dplus < h)
              && not (Time.equal dmin' dmin && Time.equal dplus' dplus)
            then
              Some
                (Printf.sprintf
                   "%s n=%d: jitter-free periodic round trip not exact: \
                    [%s,%s] vs [%s,%s]"
                   name n (Time.to_string dmin') (Time.to_string dplus')
                   (Time.to_string dmin) (Time.to_string dplus))
            else scan rest
        in
        scan roundtrip_ns)

(* On a single-resource SPP point system the curve backend's
   fixed-priority service chain and the CPA busy window are the same
   recurrence, so the pure-RTC and pure-CPA analyses must agree on
   every worst-case response bound — not just dominate each other. *)
let hybrid_pure_agreement spec =
  let single_spp =
    spec.Spec.frames = []
    && (match spec.Spec.resources with
       | [ r ] -> r.Spec.scheduler = Spec.Spp
       | _ -> false)
    && pure_periodic_point spec
  in
  if not single_spp then []
  else
    match
      ( Engine.analyse ~mode:Engine.Hierarchical ~incremental:false
          (forced_backend Spec.Rtc spec),
        Engine.analyse ~mode:Engine.Hierarchical ~incremental:false
          (forced_backend Spec.Cpa spec) )
    with
    | Ok rtc, Ok cpa ->
      let cpa_map = response_map cpa in
      [
        forall ~name:"hybrid:pure-agreement" (response_map rtc)
          (fun (element, rtc_r) ->
            match rtc_r, List.assoc_opt element cpa_map with
            | _, None -> Some (element ^ " missing from cpa result")
            | None, Some None -> None
            | Some r, Some (Some c) ->
              if Interval.hi r = Interval.hi c then None
              else
                Some
                  (Printf.sprintf "%s: rtc %s vs cpa %s" element
                     (Interval.to_string r) (Interval.to_string c))
            | Some r, Some None ->
              Some
                (Printf.sprintf "%s: rtc bounded %s, cpa unbounded" element
                   (Interval.to_string r))
            | None, Some (Some c) ->
              Some
                (Printf.sprintf "%s: rtc unbounded, cpa bounded %s" element
                   (Interval.to_string c)));
      ]
    | Error e, _ ->
      [
        check ~name:"hybrid:pure-agreement" false
          ("rtc analyse rejected: " ^ Guard.Error.to_string e);
      ]
    | _, Error e ->
      [
        check ~name:"hybrid:pure-agreement" false
          ("cpa analyse rejected: " ^ Guard.Error.to_string e);
      ]

let hybrid_soundness ?(seed = 42) ?(horizon = 200_000) ?generators spec =
  let violations = ref [] in
  let push v = violations := Violation.to_string v :: !violations in
  let roundtrip = hybrid_roundtrip ~push spec in
  let sanitized =
    check ~name:"hybrid:roundtrip-sanitizer"
      (!violations = [])
      (match !violations with
      | [] -> "no violations"
      | v :: _ ->
        Printf.sprintf "%d violations; first: %s" (List.length !violations) v)
  in
  let dominance =
    match generators with
    | None -> []
    | Some generators -> begin
      let rtc_spec = forced_backend Spec.Rtc spec in
      match
        Engine.analyse ~mode:Engine.Hierarchical ~incremental:false rtc_spec
      with
      | Error e ->
        [ check ~name:"hybrid:analyse" false (Guard.Error.to_string e) ]
      | Ok r ->
        check ~name:"hybrid:analyse" true
          (Printf.sprintf "status=%s iterations=%d"
             (Engine.status_name r.Engine.status)
             r.Engine.iterations)
        :: simulation_dominance ~seed ~horizon ~generators ~tag:"sim[hybrid]"
             r rtc_spec
    end
  in
  (roundtrip :: sanitized :: hybrid_pure_agreement spec) @ dominance

(* ------------------------------------------------------------------ *)
(* full-system verification entry point *)

let verify_spec ?(label = "system") ?(selfcheck = true) ?(seed = 42)
    ?(horizon = 200_000) ?generators spec =
  let violations = ref [] in
  let seen = Hashtbl.create 64 in
  let push v =
    let key = Violation.to_string v in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      violations := v :: !violations
    end
  in
  let audit =
    if selfcheck then Some (fun s -> Stream.audit ~on_violation:push s)
    else None
  in
  if selfcheck then
    Hem.Pack.set_warn_hook (fun (w : Hem.Pack.warning) ->
        push
          (Violation.make ~severity:Violation.Warning
             ~subject:(w.frame ^ "." ^ w.signal) ~invariant:"pack.frame_gap"
             w.reason));
  Fun.protect
    ~finally:(fun () -> if selfcheck then Hem.Pack.clear_warn_hook ())
    (fun () ->
      let checks =
        match Engine.analyse ~mode:Engine.Hierarchical ?selfcheck:audit spec with
        | Error e ->
          [
            check ~name:"analyse[hierarchical]" false
              (Guard.Error.to_string e);
          ]
        | Ok hem ->
          if selfcheck then
            List.iter
              (fun (f : Spec.frame) ->
                List.iter push
                  (Stream.check_model (hem.Engine.pre_bus_hierarchy f.frame_name));
                List.iter push
                  (Stream.check_model (hem.Engine.hierarchy f.frame_name)))
              spec.Spec.frames;
          let incremental =
            List.concat_map
              (fun mode -> engine_agreement ~mode spec)
              [ Engine.Hierarchical; Engine.Flat_stream; Engine.Flat_sem ]
          in
          let kernels =
            List.concat_map
              (fun mode -> kernel_agreement ~mode spec)
              [ Engine.Hierarchical; Engine.Flat_sem ]
          in
          let batches = batch_agreement spec in
          let tightness =
            match Engine.analyse ~mode:Engine.Flat_sem spec with
            | Error e ->
              [ check ~name:"analyse[flat_sem]" false (Guard.Error.to_string e) ]
            | Ok flat ->
              hierarchy_tightness hem flat
              ::
              (match generators with
               | None -> []
               | Some generators ->
                 simulation_dominance ~seed ~horizon ~generators ~tag:"sim[hem]"
                   hem spec
                 @ simulation_dominance ~seed ~horizon ~generators
                     ~tag:"sim[flat_sem]" flat spec)
          in
          let propagation =
            propagation_dominance ~seed ~horizon ?generators spec
          in
          let hybrid = hybrid_soundness ~seed ~horizon ?generators spec in
          (check ~name:"analyse[hierarchical]" true
             (Printf.sprintf "status=%s iterations=%d"
                (Engine.status_name hem.Engine.status)
                hem.Engine.iterations)
          :: incremental)
          @ kernels @ batches @ tightness @ propagation @ hybrid
      in
      { label; checks; violations = List.rev !violations })

let verify_case ?selfcheck ?seed ?horizon (case : Fuzz.case) =
  verify_spec ~label:case.Fuzz.label ?selfcheck ?seed ?horizon
    ~generators:case.Fuzz.generators (case.Fuzz.build ())
