type severity =
  | Error
  | Warning

type witness = {
  n : int;
  expected : string;
  got : string;
}

type t = {
  severity : severity;
  subject : string;
  invariant : string;
  witness : witness option;
  message : string;
}

let witness ~n ~expected ~got = { n; expected; got }

let make ?(severity = Error) ?witness ~subject ~invariant message =
  { severity; subject; invariant; witness; message }

let is_error t = t.severity = Error

let errors = List.filter is_error

let pp ppf t =
  let sev = match t.severity with Error -> "error" | Warning -> "warning" in
  Format.fprintf ppf "[%s] %s: %s — %s" sev t.subject t.invariant t.message;
  match t.witness with
  | None -> ()
  | Some w ->
    Format.fprintf ppf " (n=%d: expected %s, got %s)" w.n w.expected w.got

let to_string t = Format.asprintf "%a" pp t
