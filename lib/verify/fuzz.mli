(** Seeded random system generation for the verification harness.

    A fuzz case is a {!Explore.Space} edit list over one of the
    {!Scenarios} bases (the paper system or a synthetic fan-in system)
    together with simulator generators that realize exactly the source
    models the edited spec declares — so analysis oracles and
    simulation-dominance checks can run on the same case.

    Everything is derived deterministically from a seed: the same seed
    always produces the same case, which is what both the qcheck harness
    and the fixed-seed CI smoke rely on. *)

type case = {
  label : string;
  edits : Explore.Space.edit list;
  build : unit -> Cpa_system.Spec.t;
      (** rebuilds the edited spec from scratch on every call (fresh
          domain-local curves, see [Event_model.Curve]) *)
  generators : (string * Des.Gen.t) list;
      (** one generator per source, realizing the declared model *)
}

val case : rng:Random.State.t -> case
(** Draws one case: a random base, one to three random edits (source
    period / source jitter / execution-time scaling / task priority /
    frame transmission time), and matching generators. *)

val of_seed : int -> case
(** [case] over a state derived from [seed] alone. *)

val cases : seed:int -> count:int -> case list
(** [cases ~seed ~count] is [of_seed seed, of_seed (seed+1), ...]. *)
