(** Invariant sanitizer for event streams, curves and hierarchical models.

    Audits the curve-semantics conventions every code path of the
    analysis must agree on:

    - {b zero convention}: [delta_min n = delta_plus n = 0] for [n <= 1];
    - {b monotonicity}: both distance curves are non-decreasing in [n];
    - {b ordering}: [delta_min n <= delta_plus n] for every [n];
    - {b eta duality} (paper eqs. 1-2): [eta_plus dt] really is
      [max {n | delta_min n < dt}] and [eta_minus dt] really is
      [min {n >= 0 | delta_plus (n + 2) > dt}], checked by re-evaluating
      the distance curves around the returned counts;
    - {b super-/sub-additivity} ({e warning} severity): over a sampled
      set of decompositions, [delta_min (n + m - 1) >= delta_min n +
      delta_min m] and [delta_plus (n + m - 1) <= delta_plus n +
      delta_plus m].  True event streams satisfy both; a conservative
      approximation may not, which is sound but needlessly loose, hence
      a warning rather than an error.

    All checks sample the prefix [n <= horizon] (default
    {!default_horizon}).  Violations carry a witness
    [(n, expected, got)]; see {!Violation}. *)

val default_horizon : int
(** [64]. *)

val check_curve :
  ?horizon:int -> subject:string -> Event_model.Curve.t -> Violation.t list
(** Zero convention and monotonicity of a single curve. *)

val check :
  ?horizon:int -> ?dts:int list -> Event_model.Stream.t -> Violation.t list
(** Full stream audit.  [dts] overrides the window sizes probed by the
    eta-duality check (defaults to a sample derived from the stream's own
    distance values, so the probes straddle every curve step). *)

val check_model : ?horizon:int -> Hem.Model.t -> Violation.t list
(** Audits the outer stream and every inner stream of a hierarchical
    model, plus the packing containment relation
    [inner delta_min n >= outer delta_min n] ({e warning} severity —
    every fresh inner delivery rides an outer event, so the computed
    inner bounds should never fall below the outer ones). *)

val audit :
  ?horizon:int ->
  on_violation:(Violation.t -> unit) ->
  Event_model.Stream.t ->
  unit
(** [check] in callback form — the shape expected by
    [Cpa_system.Engine.analyse ~selfcheck]. *)

val wrap :
  ?on_violation:(Violation.t -> unit) ->
  Event_model.Stream.t ->
  Event_model.Stream.t
(** On-the-fly sanitizer: a stream that behaves exactly like the
    argument but re-checks, at every distance evaluation, monotonicity
    against the neighbouring index and the [delta_plus >= delta_min]
    ordering at that index, reporting violations as they are produced
    (default: raises [Failure] on the first error).  The wrapper's name
    is the wrapped name suffixed with ["!"]. *)

val is_clean : Violation.t list -> bool
(** No [Error]-severity entries ([Warning]s are allowed). *)
