module Es = Event_model.Stream
module Curve = Event_model.Curve
module Time = Timebase.Time
module Count = Timebase.Count

let default_horizon = 64

let ts = Time.to_string

(* ------------------------------------------------------------------ *)
(* single-curve checks *)

let check_curve ?(horizon = default_horizon) ~subject curve =
  let eval n = Curve.eval curve n in
  let acc = ref [] in
  let report ?severity ?witness invariant msg =
    acc := Violation.make ?severity ?witness ~subject ~invariant msg :: !acc
  in
  List.iter
    (fun n ->
      let got = eval n in
      if not (Time.equal got Time.zero) then
        report
          ~witness:(Violation.witness ~n ~expected:"0" ~got:(ts got))
          "zero"
          (Printf.sprintf "delta %d must be 0 (delta(0) = delta(1) = 0)" n))
    [ 0; 1 ];
  let prev = ref (eval 1) in
  (try
     for n = 2 to horizon do
       let cur = eval n in
       if Time.(cur < !prev) then
         report
           ~witness:
             (Violation.witness ~n ~expected:(">= " ^ ts !prev) ~got:(ts cur))
           "monotone" "distance curve decreases";
       prev := cur
     done
   with Curve.Unbounded _ -> ());
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* stream checks *)

(* Window sizes that straddle the stream's own curve steps: for every
   sampled n, both [delta n] and [delta n + 1] are probed, so the
   pseudo-inversions are exercised right at their breakpoints. *)
let default_dts s ~horizon =
  let ns =
    List.filter (fun n -> n <= horizon) [ 2; 3; 4; 5; 8; 13; 21; 34; horizon ]
  in
  let push acc t =
    match t with
    | Time.Fin v when v > 0 -> v :: (v + 1) :: acc
    | _ -> acc
  in
  let acc =
    List.fold_left
      (fun acc n -> push (push acc (Es.delta_min s n)) (Es.delta_plus s n))
      [ 1; 2; 10; 101 ] ns
  in
  List.sort_uniq Stdlib.compare (List.filter (fun v -> v > 0) acc)

let check_order ~subject ~horizon s acc =
  let bad = ref acc in
  for n = 2 to horizon do
    let lo = Es.delta_min s n and hi = Es.delta_plus s n in
    if Time.(hi < lo) then
      bad :=
        Violation.make
          ~witness:(Violation.witness ~n ~expected:(">= " ^ ts lo) ~got:(ts hi))
          ~subject ~invariant:"order" "delta_plus < delta_min"
        :: !bad
  done;
  !bad

let check_eta ~subject s dts acc =
  let acc = ref acc in
  let report ~invariant ~n ~expected ~got msg =
    acc :=
      Violation.make
        ~witness:(Violation.witness ~n ~expected ~got)
        ~subject ~invariant msg
      :: !acc
  in
  List.iter
    (fun dt ->
      let t = Time.of_int dt in
      (* eq. (1): eta_plus dt = max { n | delta_min n < dt }, i.e.
         delta_min (eta_plus dt) < dt <= delta_min (eta_plus dt + 1) *)
      (match Es.eta_plus s dt with
       | Count.Inf -> ()
       | Count.Fin n ->
         if n >= 1 && not Time.(Es.delta_min s n < t) then
           report ~invariant:"eta_plus.duality" ~n
             ~expected:(Printf.sprintf "< %d" dt)
             ~got:(ts (Es.delta_min s n))
             (Printf.sprintf "delta_min (eta_plus %d) must lie below %d" dt dt);
         if Time.(Es.delta_min s (n + 1) < t) then
           report ~invariant:"eta_plus.duality" ~n:(n + 1)
             ~expected:(Printf.sprintf ">= %d" dt)
             ~got:(ts (Es.delta_min s (n + 1)))
             (Printf.sprintf "eta_plus %d undercounts: one more event fits" dt));
      (* eq. (2): eta_minus dt = min { n >= 0 | delta_plus (n + 2) > dt } *)
      match Es.eta_minus s dt with
      | Count.Inf -> ()
      | Count.Fin n ->
        if not Time.(Es.delta_plus s (n + 2) > t) then
          report ~invariant:"eta_minus.duality" ~n:(n + 2)
            ~expected:(Printf.sprintf "> %d" dt)
            ~got:(ts (Es.delta_plus s (n + 2)))
            (Printf.sprintf
               "delta_plus (eta_minus %d + 2) must exceed the window" dt);
        if n > 0 && not Time.(Es.delta_plus s (n + 1) <= t) then
          report ~invariant:"eta_minus.duality" ~n:(n + 1)
            ~expected:(Printf.sprintf "<= %d" dt)
            ~got:(ts (Es.delta_plus s (n + 1)))
            (Printf.sprintf "eta_minus %d overcounts: a smaller n suffices" dt))
    dts;
  !acc

let additivity_pairs ~horizon =
  let candidates = [ 2; 3; 4; 5; 8; 13 ] in
  List.concat_map
    (fun n ->
      List.filter_map
        (fun m -> if n + m - 1 <= horizon then Some (n, m) else None)
        candidates)
    candidates

let check_additivity ~subject ~horizon s acc =
  List.fold_left
    (fun acc (n, m) ->
      let span = n + m - 1 in
      let lo = Time.add (Es.delta_min s n) (Es.delta_min s m) in
      let acc =
        if Time.(Es.delta_min s span < lo) then
          Violation.make ~severity:Violation.Warning
            ~witness:
              (Violation.witness ~n:span ~expected:(">= " ^ ts lo)
                 ~got:(ts (Es.delta_min s span)))
            ~subject ~invariant:"delta_min.superadditive"
            (Printf.sprintf
               "delta_min %d falls below delta_min %d + delta_min %d" span n m)
          :: acc
        else acc
      in
      let hi = Time.add (Es.delta_plus s n) (Es.delta_plus s m) in
      if Time.(Es.delta_plus s span > hi) then
        Violation.make ~severity:Violation.Warning
          ~witness:
            (Violation.witness ~n:span ~expected:("<= " ^ ts hi)
               ~got:(ts (Es.delta_plus s span)))
          ~subject ~invariant:"delta_plus.subadditive"
          (Printf.sprintf
             "delta_plus %d exceeds delta_plus %d + delta_plus %d" span n m)
        :: acc
      else acc)
    acc
    (additivity_pairs ~horizon)

let check ?(horizon = default_horizon) ?dts s =
  let name = Es.name s in
  let acc =
    check_curve ~horizon ~subject:(name ^ ".delta_min") (Es.delta_min_curve s)
    @ check_curve ~horizon ~subject:(name ^ ".delta_plus")
        (Es.delta_plus_curve s)
  in
  let acc = check_order ~subject:name ~horizon s acc in
  let dts = match dts with Some l -> l | None -> default_dts s ~horizon in
  let acc = check_eta ~subject:name s dts acc in
  let acc = check_additivity ~subject:name ~horizon s acc in
  List.rev acc

let check_model ?(horizon = default_horizon) h =
  let outer = Hem.Model.outer h in
  let outer_name = Es.name outer in
  let acc = check ~horizon outer in
  List.fold_left
    (fun acc (i : Hem.Model.inner) ->
      let acc = acc @ check ~horizon i.stream in
      (* containment: every fresh inner delivery rides an outer event, so
         n consecutive inner events span at least delta_min_out n *)
      let rec containment n acc =
        if n > Stdlib.min horizon 16 then acc
        else
          let inner_d = Es.delta_min i.stream n
          and outer_d = Es.delta_min outer n in
          let acc =
            if Time.(inner_d < outer_d) then
              Violation.make ~severity:Violation.Warning
                ~witness:
                  (Violation.witness ~n ~expected:(">= " ^ ts outer_d)
                     ~got:(ts inner_d))
                ~subject:(Es.name i.stream)
                ~invariant:"hierarchy.containment"
                (Printf.sprintf
                   "inner delta_min below outer delta_min of %s" outer_name)
              :: acc
            else acc
          in
          containment (n + 1) acc
      in
      containment 2 acc)
    acc (Hem.Model.inners h)

let audit ?horizon ~on_violation s = List.iter on_violation (check ?horizon s)

let wrap ?on_violation s =
  let on_violation =
    match on_violation with
    | Some f -> f
    | None -> fun viol -> failwith (Violation.to_string viol)
  in
  let subject = Es.name s ^ "!" in
  let report ~invariant ~n ~expected ~got msg =
    on_violation
      (Violation.make
         ~witness:(Violation.witness ~n ~expected ~got)
         ~subject ~invariant msg)
  in
  let check_order_at n =
    let lo = Es.delta_min s n and hi = Es.delta_plus s n in
    if Time.(hi < lo) then
      report ~invariant:"order" ~n ~expected:(">= " ^ ts lo) ~got:(ts hi)
        "delta_plus < delta_min"
  in
  let checked role delta n =
    let v = delta s n in
    if n >= 2 then begin
      let prev = delta s (n - 1) in
      if Time.(v < prev) then
        report
          ~invariant:(role ^ ".monotone")
          ~n ~expected:(">= " ^ ts prev) ~got:(ts v) "distance curve decreases";
      check_order_at n
    end;
    v
  in
  Es.make ~name:subject
    ~delta_min:(checked "delta_min" Es.delta_min)
    ~delta_plus:(checked "delta_plus" Es.delta_plus)

let is_clean violations = Violation.errors violations = []
