(** Differential oracles: independent implementations agreeing (or
    dominating) on the same question.

    Each oracle pairs a production code path with a reimplementation that
    shares no code with it, or with a relation the paper proves must
    hold:

    - {b backend agreement}: the compact periodic curve backend and its
      arithmetic pseudo-inversion vs naive closures over the defining
      formulas (and, for bursts, the concrete arrival pattern) with
      linear-scan inversions;
    - {b batch agreement}: batched curve sweeps ([Curve.eval_batch])
      vs the boxed scalar evaluator on unsorted, duplicate-bearing
      probe arrays, over both distance curves of every source;
    - {b engine agreement}: the incremental fixed-point engine vs a
      from-scratch recomputation — outcomes must be byte-identical,
      including iteration counts;
    - {b kernel agreement}: the whole analysis with the batched kernels
      forced off vs on ([Event_model.Kernels]) — byte-identical rendered
      outcomes;
    - {b hierarchy tightness}: hierarchical analysis response bounds
      never exceed the flat-SEM baseline's;
    - {b simulation dominance}: analytic response bounds and arrival
      curves dominate the discrete-event simulator's observations, in
      both hierarchical and flat mode;
    - {b propagation dominance}: every output-propagation mode yields
      bounds dominating the simulator, [Optimal] is pointwise at least
      as tight as every single mode, and all modes coincide
      byte-identically on jitter-free periodic point-interval systems;
    - {b hybrid soundness}: the RTC/CPA coupling boundary — every
      source stream round-trips through the curve conversion pointwise
      conservatively (exactly, for jitter-free periodic sources within
      the sampled horizon) under the {!Stream.wrap} sanitizer; pure-RTC
      and pure-CPA analyses agree on single-resource SPP point systems;
      and the all-RTC analysis' bounds dominate the simulator;
    - {b cache agreement}: exploration results served through the
      content-addressed cache render byte-identically to direct,
      cache-free evaluation.

    {!verify_spec} bundles the per-system oracles with the
    {!Stream} sanitizer (plugged into the engine's [~selfcheck] hook and
    the pack-degradation warning hook) into one report. *)

type check = {
  name : string;
  ok : bool;
  detail : string;  (** witness of the first failure, or a probe count *)
}

val check : name:string -> bool -> string -> check

val pp_check : Format.formatter -> check -> unit

type report = {
  label : string;
  checks : check list;
  violations : Violation.t list;
      (** sanitizer findings collected during the run, deduplicated *)
}

val passed : report -> bool
(** All checks ok and no [Error]-severity violations ([Warning]s do not
    fail a report). *)

val pp_report : Format.formatter -> report -> unit

(** {1 Individual oracles} *)

val backend_agreement : unit -> check list
(** Compact vs naive curves for periodic, periodic-with-jitter,
    periodic-burst and sporadic models, on a dense index prefix plus
    deep probes, and eta inversions vs linear scans.  Deterministic. *)

val batch_agreement : Cpa_system.Spec.t -> check list
(** [Curve.eval_batch] vs the scalar evaluator on unsorted probe lists
    with duplicates, for the delta_min and delta_plus curves of every
    source stream of the spec (compact and closure backends alike). *)

val engine_agreement :
  ?mode:Cpa_system.Engine.mode -> Cpa_system.Spec.t -> check list
(** [analyse ~incremental:true] vs [analyse ~incremental:false] on the
    given system ([mode] defaults to [Hierarchical]). *)

val kernel_agreement :
  ?mode:Cpa_system.Engine.mode -> Cpa_system.Spec.t -> check list
(** The analysis with batched kernels enabled vs disabled
    ([Event_model.Kernels.with_batched] / [with_scalar]), both from
    scratch: rendered outcomes must be byte-identical ([mode] defaults
    to [Hierarchical]). *)

val hierarchy_tightness :
  Cpa_system.Engine.result -> Cpa_system.Engine.result -> check
(** [hierarchy_tightness hem flat]: every element bounded in both
    results satisfies [hi hem <= hi flat]; an element bounded only
    under [flat] is a failure. *)

val degradation_soundness :
  reference:Cpa_system.Engine.result ->
  Cpa_system.Engine.result ->
  check
(** [degradation_soundness ~reference degraded]: every element the
    degraded result still claims a bound for carries {e exactly} the
    fully converged reference's bound — degradation may widen bounds to
    unbounded but never invent or shift a finite one. *)

val simulation_dominance :
  ?seed:int ->
  ?horizon:int ->
  generators:(string * Des.Gen.t) list ->
  tag:string ->
  Cpa_system.Engine.result ->
  Cpa_system.Spec.t ->
  check list
(** Simulates the system and checks observed responses against the
    result's bounds and observed source arrival counts against the
    declared eta_plus. *)

val propagation_dominance :
  ?seed:int ->
  ?horizon:int ->
  ?generators:(string * Des.Gen.t) list ->
  Cpa_system.Spec.t ->
  check list
(** Analyses the system once per propagation mode (the mode forced
    spec-wide, per-task overrides cleared) and checks, per element:
    every mode analyses successfully; [Optimal]'s response bound is
    pointwise at least as tight as every single mode's; when
    [generators] are given, every mode's bounds dominate one shared
    simulation of the system (the trace is mode-independent); and on
    systems with jitter-free periodic sources and point execution /
    transmission intervals the rendered results of all modes are
    byte-identical.  Degraded runs are excluded from the tightness and
    invariance comparisons (their widened bounds carry no claim). *)

val hybrid_soundness :
  ?seed:int ->
  ?horizon:int ->
  ?generators:(string * Des.Gen.t) list ->
  Cpa_system.Spec.t ->
  check list
(** The curve-conversion soundness audit of the hybrid backend
    coupling.  Round-trips every source stream through
    {!Hybrid.Convert} ([stream -> workload curves -> stream], with
    [wcet = bcet] so the demand scaling cancels) and checks the result
    pointwise conservative — [delta_min' <= delta_min] and
    [delta_plus' >= delta_plus] — and exact on jitter-free periodic
    sources within the sampled horizon, evaluating the converted-back
    stream under the {!Stream.wrap} sanitizer; on single-resource SPP
    systems with jitter-free periodic point-interval elements, checks
    the pure-RTC and pure-CPA analyses agree on every worst-case
    response bound; and, when [generators] are given, checks the
    analysis with {e every} resource forced onto the RTC backend (EDF
    resources stay on CPA) yields bounds dominating the simulator
    (tag ["sim[hybrid]"]). *)

val cache_agreement :
  ?jobs:int ->
  base:(unit -> Cpa_system.Spec.t) ->
  Explore.Space.variant list ->
  check
(** Runs the variants through {!Explore.Driver} (cache on) and
    re-evaluates each directly with {!Explore.Summary.evaluate} (cache
    off); digests and rendered summaries must agree byte-for-byte. *)

(** {1 Whole-system entry point} *)

val verify_spec :
  ?label:string ->
  ?selfcheck:bool ->
  ?seed:int ->
  ?horizon:int ->
  ?generators:(string * Des.Gen.t) list ->
  Cpa_system.Spec.t ->
  report
(** Runs the hierarchical analysis (with the {!Stream} sanitizer wired
    into the engine's [~selfcheck] hook and pack-degradation warnings
    captured, unless [selfcheck:false]), audits every frame hierarchy,
    then runs the engine, kernel, batch, tightness and — when
    [generators] are given — simulation oracles.  [seed] and [horizon]
    configure the simulation. *)

val verify_case :
  ?selfcheck:bool -> ?seed:int -> ?horizon:int -> Fuzz.case -> report
(** {!verify_spec} on a fuzz case, using its generators and label. *)
