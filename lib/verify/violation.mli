(** Structured invariant violations reported by the sanitizer.

    A violation pins one broken invariant on one subject (stream, curve
    or model) with, where possible, a concrete witness
    [(n, expected, got)] — enough to reproduce the offending evaluation
    instead of chasing silently propagated garbage downstream. *)

type severity =
  | Error
      (** soundness-relevant: the curve data contradicts the paper's
          semantics (eqs. 1-8) *)
  | Warning
      (** precision-relevant: the data is conservative but degraded
          (e.g. a clamped eq. (7) subtraction, a loose additivity gap) *)

type witness = {
  n : int;  (** the event count / window size of the offending probe *)
  expected : string;
  got : string;
}

type t = {
  severity : severity;
  subject : string;  (** name of the checked stream / curve / model *)
  invariant : string;  (** stable identifier, e.g. ["delta_min.monotone"] *)
  witness : witness option;
  message : string;
}

val witness : n:int -> expected:string -> got:string -> witness

val make :
  ?severity:severity ->
  ?witness:witness ->
  subject:string ->
  invariant:string ->
  string ->
  t
(** [severity] defaults to [Error]. *)

val is_error : t -> bool

val errors : t list -> t list
(** The [Error]-severity subset. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
