module Interval = Timebase.Interval
module Spec = Cpa_system.Spec
module Space = Explore.Space
module Gen = Des.Gen

type case = {
  label : string;
  edits : Space.edit list;
  build : unit -> Spec.t;
  generators : (string * Gen.t) list;
}

(* Per-source event model tracked alongside the edits so the simulator
   generators always realize exactly the stream the edited spec declares.
   [jitter = 0] means strictly periodic. *)
type source_model = {
  period : int;
  jitter : int;
}

let apply_to_models models = function
  | Space.Source_period { source; period } ->
    List.map
      (fun (s, m) -> if s = source then s, { period; jitter = 0 } else s, m)
      models
  | Space.Source_jitter { source; period; jitter; d_min = _ } ->
    List.map
      (fun (s, m) -> if s = source then s, { period; jitter } else s, m)
      models
  | Space.Cet_scale _ | Space.Task_priority _ | Space.Frame_priority _
  | Space.Frame_tx _ | Space.Propagation_mode _ | Space.Backend _
  | Space.Repack _ ->
    (* propagation and backend edits change the analysis, not the event
       sources *)
    models

let generators_of_models ~rng models =
  List.map
    (fun (s, m) ->
      let phase = Random.State.int rng (m.period + 1) in
      if m.jitter = 0 then s, Gen.periodic ~phase ~period:m.period ()
      else s, Gen.periodic_jitter ~phase ~period:m.period ~jitter:m.jitter ())
    models

let case ~rng =
  let pick lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let choose l = List.nth l (Random.State.int rng (List.length l)) in
  let base_name, build_base, base_models, tasks, frames, resources =
    if Random.State.bool rng then
      ( "paper",
        (fun () -> Scenarios.Paper_system.spec ()),
        [
          "S1", { period = 250; jitter = 0 };
          "S2", { period = 450; jitter = 0 };
          "S3", { period = 1000; jitter = 0 };
          "S4", { period = 400; jitter = 0 };
        ],
        Scenarios.Paper_system.cpu_tasks,
        Scenarios.Paper_system.frames,
        [ "CAN"; "CPU1" ] )
    else begin
      let signals = pick 2 5 in
      let base_period = 300 * signals in
      ( Printf.sprintf "fan_in%d" signals,
        (fun () -> Scenarios.Synthetic.fan_in ~signals ()),
        List.init signals (fun i ->
            ( Printf.sprintf "S%d" (i + 1),
              { period = base_period + (50 * i); jitter = 0 } )),
        List.init signals (fun i -> Printf.sprintf "T%d" (i + 1)),
        [ "F" ],
        [ "CAN"; "CPU" ] )
    end
  in
  let sources = List.map fst base_models in
  let random_edit () =
    match Random.State.int rng 6 with
    | 0 -> Space.Source_period { source = choose sources; period = pick 200 1500 }
    | 1 ->
      let period = pick 250 1500 in
      (* d_min = 0 matches the realization of [Des.Gen.periodic_jitter] *)
      Space.Source_jitter
        { source = choose sources; period; jitter = pick 0 period; d_min = 0 }
    | 2 -> Space.Cet_scale { task = choose tasks; percent = pick 60 130 }
    | 3 ->
      Space.Task_priority
        { task = choose tasks; priority = pick 1 (List.length tasks) }
    | 4 -> Space.Frame_tx { frame = choose frames; tx = Interval.point (pick 1 8) }
    | _ ->
      (* mixed-backend coverage: flip one resource's local analysis to the
         curve backend (or back), exercising the hybrid coupling *)
      let backend = if Random.State.bool rng then Spec.Rtc else Spec.Cpa in
      Space.Backend { resource = choose resources; backend }
  in
  let edits = List.init (pick 1 3) (fun _ -> random_edit ()) in
  let models = List.fold_left apply_to_models base_models edits in
  {
    label =
      base_name ^ " " ^ String.concat "+" (List.map Space.edit_label edits);
    edits;
    build = (fun () -> Space.apply_all (build_base ()) edits);
    generators = generators_of_models ~rng models;
  }

let of_seed seed = case ~rng:(Random.State.make [| 0x5eed; seed |])

let cases ~seed ~count = List.init count (fun i -> of_seed (seed + i))
