(** RTC local analysis of one resource.

    The RTC counterpart of the busy-window local analyses in
    {!Scheduling}: activations are converted to certified workload
    arrival curves ({!Convert}), the resource model to lower service
    curves ({!Rtc.Workload}), per-element bounds come from the greedy
    processing component ({!Rtc.Gpc}), and each element's processed
    output is converted back to an event stream for downstream
    resources.

    Conventions match the CPA analyses exactly so the two backends are
    interchangeable per resource: a numerically smaller priority is a
    higher priority, equal priorities interfere with each other, SPNP
    blocking is the longest lower-priority execution, and TDMA /
    round-robin use the per-element [service] parameter as slot length /
    quantum. *)

type policy =
  | Spp
  | Spnp
  | Tdma
  | Round_robin  (** analysed as TDMA with quantum-sized slots *)

type item = {
  name : string;
  cet : Timebase.Interval.t;
  priority : int;
  service : int option;  (** TDMA slot length / round-robin quantum *)
  activation : Event_model.Stream.t;
}

type outcome = {
  name : string;
  response : Scheduling.Busy_window.outcome;
      (** [Bounded [bcet : rtc delay]], or [Unbounded] when the
          element's arrival rate exceeds its guaranteed service rate (or
          its activations admit no finite arrival curve) *)
  output : Event_model.Stream.t option;
      (** the processed stream (named [name ^ ".out"]): upper bound from
          the GPC output curve, lower bound from the response-jitter
          shift of the input's lower curve; [None] for unbounded
          elements *)
}

val default_horizon : policy -> item list -> int
(** Sampling horizon heuristic: covers a multiple of the slowest
    element's 33-event span, the summed worst-case demand, and (for
    slot-based policies) several full cycles; clamped to
    [\[128, 4096\]]. *)

val analyse : ?horizon:int -> policy:policy -> item list -> outcome list
(** Analyse every item of one resource, in input order.  Never raises
    for unbounded arrivals or overload — those yield [Unbounded]
    outcomes with a reason.  When [horizon] is omitted the sampling
    range escalates geometrically from 256 up to {!default_horizon},
    stopping at the first round that bounds every item: curve
    operations are quadratic in the horizon and any horizon is sound
    (a shorter one can only be looser), so well-dimensioned systems pay
    the small-range cost only. *)
