(** Conversions between event streams and RTC workload curves.

    The coupling boundary of the hybrid analysis: a CPA event stream
    (distance-function tuple) becomes a pair of workload arrival curves
    for an RTC resource, and the curves an RTC analysis produces become
    an event stream again for downstream CPA resources.

    Both directions are conservative by construction and exact where the
    source data is exact:

    - stream -> curves scales the arrival functions eta_plus / eta_minus
      by the worst-/best-case execution demand and certifies the tails
      through {!Rtc.Workload} (sub-/superadditivity of the etas);
    - curves -> stream pseudo-inverts the curves back into distance
      functions, dividing by the same demand constants, so on the exact
      sampled range a round trip of a stream reproduces its distances
      point for point, and past the horizon the certified tails can only
      widen the bounds (delta_min' <= delta_min, delta_plus' >=
      delta_plus). *)

type curves = {
  upper : Rtc.Curve.t;  (** workload upper bound, [wcet * eta_plus] *)
  lower : Rtc.Curve.t;  (** workload lower bound, [bcet * eta_minus] *)
}

val of_stream :
  horizon:int -> wcet:int -> bcet:int -> Event_model.Stream.t -> curves
(** Certified arrival curves of a stream's demand on a resource.
    @raise Invalid_argument when the stream admits unboundedly many
    events in a finite window (no finite arrival curve exists), or on
    [wcet < bcet], [bcet < 1], [horizon < 1]. *)

val first_reaching : Rtc.Curve.t -> int -> int option
(** [first_reaching curve target] is the smallest [dt >= 0] with
    [eval curve dt >= target] — the pseudo-inversion primitive.  Exact
    (binary search) within the horizon; past it the certified tail is
    inverted in closed form.  [None] when the curve never reaches
    [target] (zero tail rate). *)

val to_stream :
  name:string ->
  wcet:int ->
  bcet:int ->
  upper:Rtc.Curve.t ->
  lower:Rtc.Curve.t option ->
  Event_model.Stream.t
(** Pseudo-invert workload curves into an event stream:

    [delta_min n = (min {dt | upper dt >= n * wcet}) - 1]
    (clamped at 0; [upper dt >= n * wcet] iff the event bound
    [floor (upper dt / wcet)] admits [n] events in a window of [dt]),
    and
    [delta_plus n = min {dt | lower dt >= (n - 2) * bcet + 1}]
    (the smallest window guaranteed to hold [n - 1] events, which is the
    defining property of the maximum distance of [n] events); [lower =
    None] or an unreachable target yields an infinite distance.

    Dividing by the same constants that scaled {!of_stream} makes the
    round trip exact on the sampled range and conservative past it.
    @raise Invalid_argument on [wcet < 1] or [bcet < 1]. *)
