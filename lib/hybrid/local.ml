module Time = Timebase.Time
module Interval = Timebase.Interval
module Stream = Event_model.Stream
module Busy_window = Scheduling.Busy_window

type policy =
  | Spp
  | Spnp
  | Tdma
  | Round_robin

type item = {
  name : string;
  cet : Interval.t;
  priority : int;
  service : int option;
  activation : Stream.t;
}

type outcome = {
  name : string;
  response : Busy_window.outcome;
  output : Stream.t option;
}

let default_horizon policy items =
  let span =
    List.fold_left
      (fun acc it ->
        match Time.to_int_opt (Stream.delta_min it.activation 33) with
        | Some d -> Stdlib.max acc d
        | None -> acc)
      0 items
  in
  let demand =
    List.fold_left (fun acc it -> acc + Interval.hi it.cet) 0 items
  in
  let cycle =
    match policy with
    | Tdma | Round_robin ->
      List.fold_left
        (fun acc it -> acc + Option.value ~default:1 it.service)
        0 items
    | Spp | Spnp -> 0
  in
  Stdlib.min 4096 (Stdlib.max 128 (span + (2 * demand) + (8 * cycle)))

(* Arrival curves of one item, or the reason none exist (activations
   admitting unboundedly many events in a finite window). *)
let item_curves ~horizon it =
  match
    Convert.of_stream ~horizon ~wcet:(Interval.hi it.cet)
      ~bcet:(Interval.lo it.cet) it.activation
  with
  | curves -> Ok curves
  | exception Invalid_argument reason -> Error reason

let unbounded name reason = { name; response = Busy_window.Unbounded reason; output = None }

(* GPC bounds for one item given its guaranteed service: the RTC delay
   covers queueing and processing, so it is the worst-case response; the
   best case is the best-case demand, as in the busy-window analyses.
   The output stream couples back into CPA: its upper bound is the GPC
   output curve, its lower bound the input's guaranteed demand delayed
   by the response jitter (an event arriving at [t] departs within
   [t + [bcet : delay]], so departures in a window of [dt] are at least
   the arrivals in a window of [dt - (delay - bcet)]). *)
let process_item ~(curves : Convert.curves) ~service it =
  let result =
    Rtc.Gpc.process ~arrival_upper:curves.Convert.upper ~service_lower:service
  in
  match result.Rtc.Gpc.delay, result.Rtc.Gpc.output_upper with
  | Some delay, Some output_upper ->
    let bcet = Interval.lo it.cet in
    let jitter = Stdlib.max 0 (delay - bcet) in
    let output_lower =
      if jitter = 0 then curves.Convert.lower
      else Rtc.Workload.service_delayed ~blocking:jitter curves.Convert.lower
    in
    let output =
      Convert.to_stream ~name:(it.name ^ ".out") ~wcet:(Interval.hi it.cet)
        ~bcet ~upper:output_upper ~lower:(Some output_lower)
    in
    {
      name = it.name;
      response = Busy_window.Bounded (Interval.make ~lo:bcet ~hi:delay);
      output = Some output;
    }
  | _ ->
    unbounded it.name
      (Printf.sprintf "rtc: arrival rate of %s exceeds its guaranteed service"
         it.name)

(* Static priorities: each item's service is what remains of the full
   resource after greedily serving every interferer (equal priorities
   interfere, as in [Busy_window.higher_priority]); SPNP first delays
   the whole resource by the longest lower-priority execution, which
   blocks the item and its interferers alike. *)
let analyse_static ~horizon ~blocking items =
  let base = Rtc.Workload.service_full ~horizon in
  let curves = List.map (fun it -> it, item_curves ~horizon it) items in
  List.map
    (fun ((it : item), own) ->
      match own with
      | Error reason -> unbounded it.name ("rtc: " ^ reason)
      | Ok own -> begin
        let interferers =
          List.filter
            (fun ((other : item), _) ->
              other != it && other.priority <= it.priority)
            curves
        in
        let blocked =
          if not blocking then Ok base
          else
            match
              List.fold_left
                (fun acc (other : item) ->
                  if other.priority > it.priority then
                    Stdlib.max acc (Interval.hi other.cet)
                  else acc)
                0 items
            with
            | 0 -> Ok base
            | b -> Ok (Rtc.Workload.service_delayed ~blocking:b base)
        in
        let service =
          List.fold_left
            (fun acc ((other : item), other_curves) ->
              match acc, other_curves with
              | Error _, _ -> acc
              | Ok _, Error reason ->
                Error
                  (Printf.sprintf "interferer %s: %s" other.name reason)
              | Ok beta, Ok (c : Convert.curves) ->
                Ok
                  (Rtc.Gpc.remaining_service ~arrival_upper:c.Convert.upper
                     ~service_lower:beta))
            blocked interferers
        in
        match service with
        | Error reason -> unbounded it.name ("rtc: " ^ reason)
        | Ok service -> process_item ~curves:own ~service it
      end)
    curves

(* Slot-based policies isolate items from each other: every item gets
   the certified TDMA lower service of its own slot in the full cycle.
   Round robin is bounded the same way — in the worst case every other
   item spends its full quantum, which is exactly a TDMA cycle. *)
let analyse_slotted ~horizon items =
  let slot_of it =
    match it.service with
    | Some s when s >= 1 -> s
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf "Hybrid.Local: item %s needs a service parameter"
           it.name)
  in
  let cycle = List.fold_left (fun acc it -> acc + slot_of it) 0 items in
  List.map
    (fun it ->
      match item_curves ~horizon it with
      | Error reason -> unbounded it.name ("rtc: " ^ reason)
      | Ok curves ->
        let service =
          Rtc.Workload.service_tdma ~horizon ~slot:(slot_of it) ~cycle
        in
        process_item ~curves ~service it)
    items

let bounded r =
  match r.response with
  | Busy_window.Bounded _ -> true
  | Busy_window.Unbounded _ -> false

let analyse ?horizon ~policy items =
  let run horizon =
    match policy with
    | Spp -> analyse_static ~horizon ~blocking:false items
    | Spnp -> analyse_static ~horizon ~blocking:true items
    | Tdma | Round_robin -> analyse_slotted ~horizon items
  in
  match horizon with
  | Some h -> run h
  | None ->
    (* Escalating horizon: curve operations are quadratic in the sampled
       range, so start small and only grow (towards the certified-tail
       target) while some outcome is still unbounded — a short horizon
       is sound at every step, it can only be looser.  Most systems
       bound every item in the first round. *)
    let target = default_horizon policy items in
    let rec go h =
      let results = run h in
      if h >= target || List.for_all bounded results then results
      else go (Stdlib.min target (4 * h))
    in
    go (Stdlib.min target 256)
