module Time = Timebase.Time
module Stream = Event_model.Stream

type curves = {
  upper : Rtc.Curve.t;
  lower : Rtc.Curve.t;
}

let of_stream ~horizon ~wcet ~bcet stream =
  if bcet < 1 then invalid_arg "Convert.of_stream: bcet < 1";
  if wcet < bcet then invalid_arg "Convert.of_stream: wcet < bcet";
  {
    upper = Rtc.Workload.arrival_upper ~horizon ~wcet stream;
    lower = Rtc.Workload.arrival_lower ~horizon ~bcet stream;
  }

(* Smallest [dt] with [eval curve dt >= target].  Within the horizon the
   samples are monotone, so a binary search is exact.  Past the horizon
   the curve is [anchor + round (x * num / den)] with [anchor =
   samples horizon + tail_offset] and rounding by kind, which inverts in
   closed form:

   - Upper (ceil):  ceil (x*num/den) >= need  iff  x*num > (need-1)*den
   - Lower (floor): floor (x*num/den) >= need iff  x*num >= need*den *)
let first_reaching curve target =
  if target <= 0 then Some 0
  else begin
    let h = Rtc.Curve.horizon curve in
    if Rtc.Curve.eval curve h >= target then begin
      let lo = ref 0 and hi = ref h in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Rtc.Curve.eval curve mid >= target then hi := mid else lo := mid + 1
      done;
      Some !lo
    end
    else begin
      let anchor = Rtc.Curve.eval curve h + Rtc.Curve.tail_offset curve in
      let num, den = Rtc.Curve.tail_rate curve in
      let need = target - anchor in
      if need <= 0 then Some (h + 1)
      else if num = 0 then None
      else
        let x =
          match Rtc.Curve.kind curve with
          | Rtc.Curve.Upper -> (((need - 1) * den) / num) + 1
          | Rtc.Curve.Lower -> ((need * den) + num - 1) / num
        in
        Some (h + x)
    end
  end

let to_stream ~name ~wcet ~bcet ~upper ~lower =
  if wcet < 1 then invalid_arg "Convert.to_stream: wcet < 1";
  if bcet < 1 then invalid_arg "Convert.to_stream: bcet < 1";
  let delta_min n =
    (* eta_plus' dt = floor (upper dt / wcet); delta_min n is one less
       than the smallest window the event bound lets [n] events into *)
    match first_reaching upper (n * wcet) with
    | Some dt -> Time.of_int (Stdlib.max 0 (dt - 1))
    | None -> Time.Inf
  in
  let delta_plus n =
    (* the smallest window guaranteed to contain [n - 1] events bounds
       the distance of [n] consecutive events from above:
       eta_minus' dt = ceil (lower dt / bcet) >= n - 1
       iff lower dt >= (n - 2) * bcet + 1 *)
    match lower with
    | None -> Time.Inf
    | Some lower -> begin
      match first_reaching lower (((n - 2) * bcet) + 1) with
      | Some dt -> Time.of_int dt
      | None -> Time.Inf
    end
  in
  Stream.make ~name ~delta_min ~delta_plus
